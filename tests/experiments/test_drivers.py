"""Tests for the experiment drivers (small-scale runs of every figure)."""

import pytest

from repro.experiments.ablations import (
    run_binning_strategy_ablation,
    run_generalization_attack_ablation,
    run_lsb_ablation,
    run_ownership_ablation,
    run_seamlessness_theory_check,
)
from repro.experiments.config import ExperimentConfig, build_workload
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12a, run_fig12b, run_fig12c
from repro.experiments.fig13 import run_fig13
from repro.experiments.fig14 import run_fig14


@pytest.fixture(scope="module")
def config():
    """A small configuration so the whole module stays fast."""
    return ExperimentConfig(table_size=1200, seed=3, k=10, eta=30, copies=3)


class TestWorkload:
    def test_build_workload(self, config):
        workload = build_workload(config)
        assert len(workload.table) == config.table_size
        assert workload.protected.mark is not None
        assert workload.framework.detect(workload.protected.watermarked).mark == workload.protected.mark


class TestFigureDrivers:
    def test_fig11_shape(self, config):
        points = run_fig11(config, k_values=(2, 10, 40))
        assert [point.k for point in points] == [2, 10, 40]
        for point in points:
            assert 0.0 <= point.mono_information_loss <= point.multi_information_loss <= 1.0
        # Mono loss is non-decreasing in k.
        assert points[0].mono_information_loss <= points[-1].mono_information_loss + 1e-9

    def test_fig12a_alteration(self, config):
        points = run_fig12a(config, etas=(30,), fractions=(0.0, 0.5))
        clean = next(point for point in points if point.fraction == 0.0)
        attacked = next(point for point in points if point.fraction == 0.5)
        assert clean.mark_loss == 0.0
        assert attacked.mark_loss >= clean.mark_loss
        assert attacked.rows_touched == round(0.5 * config.table_size)

    def test_fig12b_addition(self, config):
        points = run_fig12b(config, etas=(30,), fractions=(0.0, 0.6))
        assert all(0.0 <= point.mark_loss <= 0.6 for point in points)

    def test_fig12c_deletion(self, config):
        points = run_fig12c(config, etas=(30,), fractions=(0.0, 0.5))
        clean = next(point for point in points if point.fraction == 0.0)
        assert clean.mark_loss == 0.0
        assert all(point.mark_loss <= 0.5 for point in points)

    def test_fig13_loss_decreases_with_eta(self, config):
        points = run_fig13(config, etas=(20, 120))
        assert all(point.information_loss >= 0.0 for point in points)
        assert points[0].cells_changed > points[-1].cells_changed
        assert points[0].information_loss >= points[-1].information_loss

    def test_fig14_no_bin_below_k(self, config):
        reports = run_fig14(config, k_values=(5, 10))
        assert [report.k for report in reports] == [5, 10]
        for report in reports:
            assert not report.any_bin_below_k
            assert sum(column.bins_changed for column in report.columns) > 0


class TestAblationDrivers:
    def test_generalization_attack_ablation(self, config):
        rows = run_generalization_attack_ablation(config, levels=(1,))
        assert rows[0].hierarchical_mark_loss <= 0.1
        assert rows[0].single_level_mark_loss > rows[0].hierarchical_mark_loss

    def test_ownership_ablation(self, config):
        rows = run_ownership_ablation(config)
        assert len(rows) == 2
        for row in rows:
            assert row.owner_valid
            assert not row.attacker_valid
            assert row.winner == "hospital"

    def test_binning_strategy_ablation(self, config):
        rows = run_binning_strategy_ablation(config, k_values=(10,))
        assert rows[0].downward_information_loss <= rows[0].datafly_information_loss

    def test_lsb_ablation(self, config):
        row = run_lsb_ablation(config)
        assert row.lsb_match_rate_clean > 0.95
        assert row.lsb_match_rate_after_flip < 0.7
        assert not row.lsb_survives_flip
        assert row.hierarchical_loss_after_generalization <= 0.1

    def test_seamlessness_theory_check(self):
        point = run_seamlessness_theory_check(group_sizes=(3, 4), n_k=3, trials=5000, seed=2)
        assert point.pr_minus_theory == pytest.approx(point.pr_plus_theory)
        assert point.pr_minus_simulated == pytest.approx(point.pr_minus_theory, abs=0.02)
        with pytest.raises(ValueError):
            run_seamlessness_theory_check(group_sizes=(3, 4), n_k=5)


class TestConfig:
    def test_scaling_helpers(self):
        config = ExperimentConfig(table_size=100, k=5, eta=10)
        assert config.scaled(200).table_size == 200
        assert config.with_k(7).k == 7
        assert config.with_eta(99).eta == 99
        # The original is immutable.
        assert config.table_size == 100 and config.k == 5 and config.eta == 10

    def test_explicit_copies_respected(self):
        config = ExperimentConfig(table_size=20_000, eta=50, copies=4)
        assert config.effective_copies() == 4

    def test_adaptive_copies_exhaust_the_bandwidth(self):
        # 20 000 rows, eta=50 -> ~400 selected tuples, 5 columns, 20-bit mark:
        # the replicated mark should fill the ~2 000 expected positions.
        config = ExperimentConfig(table_size=20_000, eta=50, mark_length=20, copies=None)
        assert config.effective_copies(5) == 100
        # Fewer embedded tuples -> fewer copies, but never below one.
        assert ExperimentConfig(table_size=100, eta=50, copies=None).effective_copies(5) == 1

    def test_adaptive_copies_scale_with_eta(self):
        small_eta = ExperimentConfig(table_size=10_000, eta=50, copies=None).effective_copies(5)
        large_eta = ExperimentConfig(table_size=10_000, eta=200, copies=None).effective_copies(5)
        assert small_eta > large_eta
