"""Tests for the deterministic PRNG."""

import math

import pytest

from repro.crypto.prng import DeterministicPRNG


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = [DeterministicPRNG("seed").random() for _ in range(1)]
        b = [DeterministicPRNG("seed").random() for _ in range(1)]
        assert a == b

    def test_structured_seeds(self):
        a = DeterministicPRNG(("fig12a", 50, 3)).randint(0, 1000)
        b = DeterministicPRNG(("fig12a", 50, 3)).randint(0, 1000)
        assert a == b

    def test_different_seeds_differ(self):
        a = [DeterministicPRNG("seed-1").random() for _ in range(5)]
        b = [DeterministicPRNG("seed-2").random() for _ in range(5)]
        assert a != b

    def test_spawn_is_independent_and_deterministic(self):
        parent = DeterministicPRNG("seed")
        child_a = parent.spawn("a")
        child_b = parent.spawn("b")
        assert child_a.random() != child_b.random()
        assert DeterministicPRNG("seed").spawn("a").random() == DeterministicPRNG("seed").spawn("a").random()


class TestDistributions:
    def test_random_in_unit_interval(self):
        rng = DeterministicPRNG(0)
        values = [rng.random() for _ in range(2000)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert 0.45 < sum(values) / len(values) < 0.55

    def test_randint_bounds_inclusive(self):
        rng = DeterministicPRNG(1)
        values = [rng.randint(3, 7) for _ in range(2000)]
        assert set(values) == {3, 4, 5, 6, 7}

    def test_randint_single_value(self):
        assert DeterministicPRNG(2).randint(5, 5) == 5

    def test_randint_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            DeterministicPRNG(0).randint(5, 4)

    def test_uniform_bounds(self):
        rng = DeterministicPRNG(3)
        assert all(2.0 <= rng.uniform(2.0, 4.0) < 4.0 for _ in range(200))

    def test_gauss_moments(self):
        rng = DeterministicPRNG(4)
        values = [rng.gauss(10.0, 2.0) for _ in range(4000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert abs(mean - 10.0) < 0.2
        assert abs(math.sqrt(var) - 2.0) < 0.2

    def test_random_bytes_length(self):
        rng = DeterministicPRNG(5)
        assert len(rng.random_bytes(100)) == 100
        assert rng.random_bytes(0) == b""

    def test_random_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            DeterministicPRNG(0).random_bytes(-1)

    def test_zipf_index_skews_low(self):
        rng = DeterministicPRNG(6)
        draws = [rng.zipf_index(50, exponent=1.2) for _ in range(1500)]
        assert all(0 <= d < 50 for d in draws)
        low = sum(1 for d in draws if d < 10)
        high = sum(1 for d in draws if d >= 40)
        assert low > high


class TestCollections:
    def test_choice_covers_all_items(self):
        rng = DeterministicPRNG(7)
        items = ["a", "b", "c"]
        assert {rng.choice(items) for _ in range(200)} == set(items)

    def test_choice_empty_raises(self):
        with pytest.raises(IndexError):
            DeterministicPRNG(0).choice([])

    def test_weighted_choice_respects_weights(self):
        rng = DeterministicPRNG(8)
        draws = [rng.weighted_choice(["x", "y"], [9.0, 1.0]) for _ in range(2000)]
        assert draws.count("x") > draws.count("y") * 4

    def test_weighted_choice_zero_weight_never_drawn(self):
        rng = DeterministicPRNG(9)
        draws = {rng.weighted_choice(["x", "y", "z"], [1.0, 0.0, 1.0]) for _ in range(500)}
        assert "y" not in draws

    def test_weighted_choice_validation(self):
        rng = DeterministicPRNG(0)
        with pytest.raises(ValueError):
            rng.weighted_choice(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            rng.weighted_choice(["a", "b"], [0.0, 0.0])
        with pytest.raises(ValueError):
            rng.weighted_choice(["a", "b"], [1.0, -1.0])
        with pytest.raises(IndexError):
            rng.weighted_choice([], [])

    def test_sample_without_replacement(self):
        rng = DeterministicPRNG(10)
        sample = rng.sample(range(100), 30)
        assert len(sample) == 30
        assert len(set(sample)) == 30

    def test_sample_validation(self):
        rng = DeterministicPRNG(0)
        with pytest.raises(ValueError):
            rng.sample([1, 2], 3)
        with pytest.raises(ValueError):
            rng.sample([1, 2], -1)

    def test_shuffle_is_permutation(self):
        rng = DeterministicPRNG(11)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items

    def test_subset_indices_size_and_sortedness(self):
        rng = DeterministicPRNG(12)
        subset = rng.subset_indices(100, 0.3)
        assert len(subset) == 30
        assert subset == sorted(subset)
        assert all(0 <= index < 100 for index in subset)

    def test_subset_indices_extremes(self):
        rng = DeterministicPRNG(13)
        assert rng.subset_indices(10, 0.0) == []
        assert len(rng.subset_indices(10, 1.0)) == 10
        with pytest.raises(ValueError):
            rng.subset_indices(10, 1.5)
