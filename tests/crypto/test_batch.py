"""Equivalence suite: the batched hash engine vs the scalar reference.

The entire point of :mod:`repro.crypto.batch` is that it computes *exactly*
the digests of :func:`repro.crypto.hashing.keyed_hash` — just without the
per-call HMAC key schedule and re-serialisation.  These tests pin that
equivalence for every supported value type, every hasher, both engines and
the digest cache.
"""

from __future__ import annotations

import pytest

from repro.crypto.batch import (
    KeyedHashStream,
    ScalarWatermarkEngine,
    TupleHasher,
    WatermarkHashEngine,
    make_engine,
    serialise_value,
)
from repro.crypto.hashing import keyed_hash, keyed_hash_bytes
from repro.watermarking.keys import WatermarkKey

# Every value kind that can appear in a table or a hash-input tuple.
VALUE_ZOO = [
    b"",
    b"raw-bytes",
    "",
    "token",
    "unicode-é中",
    0,
    -1,
    42,
    10**40,
    True,
    False,
    0.0,
    -2.0,
    3.141592653589793,
    1e5,
    float("inf"),
    None,
    (),
    ("a", "bc"),
    ("ab", "c"),  # must hash differently from the previous entry
    ("ident", "column", "position"),
    ("nested", (1, ("deep", None)), [2.5, b"x"]),
    ["list", 1],
]

KEYS = [b"binary-key", b"k" * 64, b"k" * 200, "string-key", 123456789]


class TestKeyedHashStream:
    @pytest.mark.parametrize("key", KEYS, ids=[repr(k)[:20] for k in KEYS])
    def test_hash_many_matches_scalar_keyed_hash(self, key):
        stream = KeyedHashStream(key)
        assert stream.hash_many(VALUE_ZOO) == [keyed_hash(value, key) for value in VALUE_ZOO]

    def test_digest_matches_keyed_hash_bytes(self):
        stream = KeyedHashStream(b"key")
        for value in VALUE_ZOO:
            assert stream.digest(value) == keyed_hash_bytes(value, b"key")

    def test_hash_one_matches_scalar(self):
        stream = KeyedHashStream("secret")
        for value in VALUE_ZOO:
            assert stream.hash_one(value) == keyed_hash(value, "secret")

    def test_select_indices_matches_equation_5(self):
        key = WatermarkKey.from_secret("sel", eta=3)
        idents = [f"ident-{i}" for i in range(500)] + [i for i in range(50)]
        stream = KeyedHashStream(key.k1)
        expected = [i for i, v in enumerate(idents) if keyed_hash(v, key.k1) % key.eta == 0]
        assert stream.select_indices(idents, key.eta) == expected
        # A healthy share is selected at eta=3; the test must not be vacuous.
        assert len(expected) > 50

    def test_select_indices_rejects_bad_eta(self):
        with pytest.raises(ValueError):
            KeyedHashStream(b"k").select_indices(["a"], 0)

    def test_cache_returns_identical_results(self):
        stream = KeyedHashStream(b"k", cache_size=4)
        first = stream.hash_many(VALUE_ZOO)
        second = stream.hash_many(VALUE_ZOO)  # partly cached, partly evicted
        assert first == second

    def test_cache_disabled(self):
        stream = KeyedHashStream(b"k", cache_size=0)
        assert stream.hash_one("v") == keyed_hash("v", b"k")
        assert stream._cache is None

    def test_unsupported_value_raises(self):
        with pytest.raises(TypeError):
            KeyedHashStream(b"k").hash_one({"a": 1})


class TestTupleHasher:
    def test_framing_matches_tuple_serialisation(self):
        stream = KeyedHashStream(b"key")
        for head in VALUE_ZOO:
            hasher = TupleHasher(stream, ("age", "position"))
            payload = hasher.payload(serialise_value(head))
            assert payload == serialise_value((head, "age", "position"))

    def test_hash_matches_scalar_tuple_hash(self):
        key = WatermarkKey.from_secret("tuples", eta=5)
        for tail in [("age", "position"), ("zip", "index", 3), ("only",)]:
            hasher = TupleHasher(KeyedHashStream(key.k2), tail)
            for head in ["ident-1", 42, b"raw", None]:
                expected = keyed_hash((head, *tail), key.k2)
                assert hasher.hash_int(serialise_value(head)) == expected


@pytest.mark.parametrize("eta", [1, 2, 7, 50])
class TestEngineEquivalence:
    def _engines(self, eta):
        key = WatermarkKey.from_secret("engine-equivalence", eta)
        return key, WatermarkHashEngine(key), ScalarWatermarkEngine(key)

    def test_selection(self, eta):
        key, batched, scalar = self._engines(eta)
        idents = [f"ident-{i}" for i in range(300)]
        assert batched.selected_indices(idents) == scalar.selected_indices(idents)
        for ident in idents[:50]:
            assert batched.is_selected(ident) == scalar.is_selected(ident)

    def test_positions_and_base_indices(self, eta):
        key, batched, scalar = self._engines(eta)
        for ident in ["a", 17, ("multi", "ident")]:
            for column in ("age", "zip_code"):
                assert batched.position(ident, column, 80) == scalar.position(ident, column, 80)
                for level in range(4):
                    for size in (2, 3, 5, 9):
                        assert batched.base_index(ident, column, level, size) == scalar.base_index(
                            ident, column, level, size
                        )

    def test_tuple_coordinates_sweep(self, eta):
        key, batched, scalar = self._engines(eta)
        idents = [f"ident-{i}" for i in range(400)]
        columns = ("age", "zip_code", "symptom")
        got = batched.tuple_coordinates(idents, columns, 60, level_sizes={"age": 2})
        ref = scalar.tuple_coordinates(idents, columns, 60)
        assert len(got) == len(ref) == len(idents)
        for coords, expected in zip(got, ref):
            assert (coords is None) == (expected is None)
            if coords is None:
                continue
            for column in columns:
                assert coords.position(column) == expected.position(column)
                for level in range(3):
                    assert coords.base_index(column, level, 4) == expected.base_index(
                        column, level, 4
                    )

    def test_tuple_coordinates_rejects_bad_wmd_length(self, eta):
        key, batched, scalar = self._engines(eta)
        for engine in (batched, scalar):
            with pytest.raises(ValueError):
                engine.tuple_coordinates(["a"], ("c",), 0)


class TestMakeEngine:
    def test_batch_flag_picks_the_engine(self):
        key = WatermarkKey.from_secret("mk", 10)
        assert isinstance(make_engine(key, batch=True), WatermarkHashEngine)
        assert isinstance(make_engine(key, batch=False), ScalarWatermarkEngine)

    def test_engines_expose_their_key(self):
        key = WatermarkKey.from_secret("mk", 10)
        assert make_engine(key, batch=True).key is key
        assert make_engine(key, batch=False).key is key
