"""Tests for the Feistel block cipher and the field encryptor."""

import pytest

from repro.crypto.cipher import FeistelCipher, FieldEncryptor


class TestFeistelCipher:
    def test_roundtrip_small_values(self):
        cipher = FeistelCipher(b"key")
        for block in (0, 1, 255, 2**32, 2**64 - 1):
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_roundtrip_many_blocks(self):
        cipher = FeistelCipher("another key")
        for block in range(0, 5000, 37):
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_is_a_permutation_on_a_sample(self):
        cipher = FeistelCipher("key")
        outputs = {cipher.encrypt_block(block) for block in range(512)}
        assert len(outputs) == 512

    def test_encryption_depends_on_key(self):
        assert FeistelCipher("k1").encrypt_block(1234) != FeistelCipher("k2").encrypt_block(1234)

    def test_encryption_is_deterministic(self):
        assert FeistelCipher("k").encrypt_block(99) == FeistelCipher("k").encrypt_block(99)

    def test_output_in_block_range(self):
        cipher = FeistelCipher("k")
        for block in (0, 123456789, 2**64 - 1):
            assert 0 <= cipher.encrypt_block(block) < 2**64

    def test_rejects_out_of_range_blocks(self):
        cipher = FeistelCipher("k")
        with pytest.raises(ValueError):
            cipher.encrypt_block(2**64)
        with pytest.raises(ValueError):
            cipher.encrypt_block(-1)
        with pytest.raises(ValueError):
            cipher.decrypt_block(2**64)

    def test_rejects_too_few_rounds(self):
        with pytest.raises(ValueError):
            FeistelCipher("k", rounds=3)

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            FeistelCipher(b"")

    def test_rounds_property(self):
        assert FeistelCipher("k", rounds=12).rounds == 12


class TestFieldEncryptor:
    def test_roundtrip_ssn(self):
        enc = FieldEncryptor("secret")
        token = enc.encrypt("123456789")
        assert token != "123456789"
        assert enc.decrypt(token) == "123456789"

    def test_roundtrip_non_numeric(self):
        enc = FieldEncryptor("secret")
        for value in ("", "a", "hello world", "ünïcødé", "x" * 100):
            assert enc.decrypt(enc.encrypt(value)) == value

    def test_roundtrip_non_string_values(self):
        enc = FieldEncryptor("secret")
        assert enc.decrypt(enc.encrypt(424242)) == "424242"

    def test_deterministic(self):
        enc = FieldEncryptor("secret")
        assert enc.encrypt("123456789") == enc.encrypt("123456789")

    def test_distinct_values_distinct_tokens(self):
        enc = FieldEncryptor("secret")
        tokens = {enc.encrypt(f"{i:09d}") for i in range(500)}
        assert len(tokens) == 500

    def test_token_is_hex(self):
        token = FieldEncryptor("secret").encrypt("123456789")
        int(token, 16)  # does not raise
        assert len(token) % 16 == 0

    def test_key_matters(self):
        assert FieldEncryptor("k1").encrypt("123") != FieldEncryptor("k2").encrypt("123")

    def test_wrong_key_does_not_recover_plaintext(self):
        token = FieldEncryptor("right-key").encrypt("123456789")
        try:
            recovered = FieldEncryptor("wrong-key").decrypt(token)
        except (ValueError, UnicodeDecodeError):
            return
        assert recovered != "123456789"

    def test_decrypt_rejects_malformed_tokens(self):
        enc = FieldEncryptor("secret")
        with pytest.raises(ValueError):
            enc.decrypt("")
        with pytest.raises(ValueError):
            enc.decrypt("abc")  # not a multiple of 16
        with pytest.raises(ValueError):
            enc.decrypt("zz" * 8)  # not hexadecimal

    def test_long_values_use_chaining(self):
        enc = FieldEncryptor("secret")
        token = enc.encrypt("ab" * 40)
        # CBC-style chaining: repeated plaintext blocks must not produce
        # repeated ciphertext blocks.
        blocks = [token[i : i + 16] for i in range(0, len(token), 16)]
        assert len(set(blocks)) == len(blocks)
