"""Tests for the keyed hash and the one-way mark-derivation function."""

import pytest

from repro.crypto.hashing import (
    derive_subkey,
    keyed_hash,
    keyed_hash_bytes,
    mark_from_statistic,
    one_way_bits,
)


class TestKeyedHash:
    def test_deterministic(self):
        assert keyed_hash("abc", "key") == keyed_hash("abc", "key")

    def test_key_changes_output(self):
        assert keyed_hash("abc", "key-1") != keyed_hash("abc", "key-2")

    def test_value_changes_output(self):
        assert keyed_hash("abc", "key") != keyed_hash("abd", "key")

    def test_non_negative(self):
        assert keyed_hash("abc", "key") >= 0

    def test_bytes_digest_length(self):
        assert len(keyed_hash_bytes("abc", "key")) == 32

    def test_accepts_int_values(self):
        assert keyed_hash(42, "key") != keyed_hash(43, "key")

    def test_accepts_int_keys(self):
        assert keyed_hash("abc", 7) == keyed_hash("abc", 7)

    def test_accepts_float_and_none(self):
        assert keyed_hash(1.5, "key") != keyed_hash(None, "key")

    def test_accepts_bool(self):
        assert keyed_hash(True, "key") != keyed_hash(False, "key")

    def test_tuple_framing_is_unambiguous(self):
        assert keyed_hash(("ab", "c"), "key") != keyed_hash(("a", "bc"), "key")

    def test_nested_tuples(self):
        assert keyed_hash(("a", ("b", 1)), "key") != keyed_hash(("a", ("b", 2)), "key")

    def test_int_and_string_do_not_collide(self):
        assert keyed_hash(42, "key") != keyed_hash("42", "key")

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            keyed_hash(object(), "key")

    def test_unsupported_key_type_rejected(self):
        with pytest.raises(TypeError):
            keyed_hash("abc", 1.5)

    def test_modular_distribution_roughly_uniform(self):
        # The hash drives "mod eta" selection; a crude chi-square-ish sanity
        # check that residues are not wildly skewed.
        counts = [0] * 10
        for i in range(2000):
            counts[keyed_hash(("tuple", i), "key") % 10] += 1
        assert min(counts) > 120
        assert max(counts) < 280


class TestDeriveSubkey:
    def test_distinct_labels_give_distinct_keys(self):
        assert derive_subkey("secret", "selection") != derive_subkey("secret", "permutation")

    def test_deterministic(self):
        assert derive_subkey("secret", "a") == derive_subkey("secret", "a")

    def test_distinct_secrets_give_distinct_keys(self):
        assert derive_subkey("secret-1", "a") != derive_subkey("secret-2", "a")

    def test_length(self):
        assert len(derive_subkey("secret", "a")) == 32


class TestOneWayBits:
    def test_length_respected(self):
        assert len(one_way_bits("value", 20)) == 20
        assert len(one_way_bits("value", 300)) == 300

    def test_bits_are_binary(self):
        assert set(one_way_bits("value", 64)) <= {0, 1}

    def test_deterministic(self):
        assert one_way_bits("v", 32) == one_way_bits("v", 32)

    def test_different_inputs_differ(self):
        assert one_way_bits("v1", 64) != one_way_bits("v2", 64)

    def test_rejects_non_positive_length(self):
        with pytest.raises(ValueError):
            one_way_bits("v", 0)


class TestMarkFromStatistic:
    def test_quantisation_maps_nearby_values_to_same_mark(self):
        assert mark_from_statistic(1_000_000.2, 20, precision=1.0) == mark_from_statistic(
            1_000_000.4, 20, precision=1.0
        )

    def test_distant_values_differ(self):
        assert mark_from_statistic(1.0, 20) != mark_from_statistic(2.0e9, 20)

    def test_rejects_bad_precision(self):
        with pytest.raises(ValueError):
            mark_from_statistic(1.0, 20, precision=0.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            mark_from_statistic(float("nan"), 20)

    def test_rejects_infinity(self):
        with pytest.raises(ValueError):
            mark_from_statistic(float("inf"), 20)
