"""Adversarial scenario suite: realistic attack and deployment narratives.

Each scenario exercises a whole storyline — incremental publication, stacked
attack pipelines, multi-tenant vaults — rather than a single component, and
every detection path runs on the serial, thread-pool and process-pool
runners to pin their bit-identical merge semantics.
"""

import pytest

from repro.attacks.addition import SubsetAdditionAttack
from repro.attacks.alteration import SubsetAlterationAttack
from repro.attacks.deletion import SubsetDeletionAttack
from repro.binning.binner import BinnedTable
from repro.service.executor import ShardExecutor
from repro.watermarking.mark import mark_loss

# (runner, workers) triples every detection scenario runs on.  workers=1
# falls back to the serial in-process path inside ShardExecutor.detect.
RUNNERS = [
    pytest.param(("thread", 1), id="serial"),
    pytest.param(("thread", 4), id="thread"),
    pytest.param(("process", 4), id="process"),
]


def detect_on(runner_workers, watermarker, binned, mark_length):
    runner, workers = runner_workers
    executor = ShardExecutor(workers, runner=runner)
    shards = workers if workers > 1 else None
    return executor.detect(watermarker, binned, mark_length, shards=shards)


def concatenate(first: BinnedTable, second: BinnedTable) -> BinnedTable:
    """Append *second*'s rows after *first*'s, sharing metadata and row dicts."""
    table_cls = type(first.table)
    combined = table_cls.from_validated_rows(
        first.table.schema, list(first.table.rows) + list(second.table.rows)
    )
    return BinnedTable(
        table=combined,
        trees=first.trees,
        identifying_columns=first.identifying_columns,
        quasi_columns=first.quasi_columns,
        ultimate_nodes=dict(first.ultimate_nodes),
        maximal_nodes=dict(first.maximal_nodes),
        minimal_nodes=dict(first.minimal_nodes),
        k=first.k,
    )


class TestIncrementalAppend:
    """The owner publishes a base table, then later appends a delta batch.

    Tuple selection and position assignment hash each row independently, so
    watermarking the delta separately (same secret, same mark) and appending
    it must be indistinguishable from having protected everything at once.
    """

    @pytest.fixture(scope="class")
    def appended(self, protection_framework, protected_small):
        binned = protected_small.binned
        split = 1000
        base, delta = binned.slice(0, split), binned.slice(split, len(binned.table))
        watermarker = protection_framework.watermarker()
        base_marked = watermarker.embed(base, protected_small.mark).watermarked
        delta_marked = watermarker.embed(delta, protected_small.mark).watermarked
        return concatenate(base_marked, delta_marked)

    def test_append_is_identical_to_whole_table_embed(self, appended, protected_small):
        assert appended.table == protected_small.watermarked.table

    @pytest.mark.parametrize("runner_workers", RUNNERS)
    def test_mark_recovered_from_appended_table(
        self, runner_workers, appended, protection_framework, protected_small
    ):
        watermarker = protection_framework.watermarker()
        report = detect_on(runner_workers, watermarker, appended, len(protected_small.mark))
        assert report.mark == protected_small.mark
        assert mark_loss(protected_small.mark, report.mark) == 0.0

    @pytest.mark.parametrize("runner_workers", RUNNERS)
    def test_delta_alone_still_carries_the_mark(
        self, runner_workers, protection_framework, protected_small
    ):
        # A thief who republishes only the freshly appended rows still loses:
        # the delta batch alone recovers most of the mark.
        binned = protected_small.binned
        delta = binned.slice(1000, len(binned.table))
        watermarker = protection_framework.watermarker()
        delta_marked = watermarker.embed(delta, protected_small.mark).watermarked
        report = detect_on(runner_workers, watermarker, delta_marked, len(protected_small.mark))
        assert mark_loss(protected_small.mark, report.mark) <= 0.25


class TestMixedAttackPipeline:
    """Alteration, then deletion, then bogus additions — stacked in sequence."""

    @pytest.fixture(scope="class")
    def attacked(self, protected_small):
        stage1 = SubsetAlterationAttack(0.2, seed=101).run(protected_small.watermarked).attacked
        stage2 = SubsetDeletionAttack(0.2, seed=102).run(stage1).attacked
        stage3 = SubsetAdditionAttack(0.25, seed=103).run(stage2).attacked
        return stage3

    @pytest.mark.parametrize("runner_workers", RUNNERS)
    def test_majority_vote_survives_the_pipeline(
        self, runner_workers, attacked, protection_framework, protected_small
    ):
        watermarker = protection_framework.watermarker()
        report = detect_on(runner_workers, watermarker, attacked, len(protected_small.mark))
        assert report.code == "repetition"
        assert mark_loss(protected_small.mark, report.mark) <= 0.35

    @pytest.mark.parametrize("runner_workers", RUNNERS)
    def test_soft_decoding_never_does_worse(
        self, runner_workers, attacked, protection_framework, protected_small
    ):
        watermarker = protection_framework.watermarker()
        hard = detect_on(runner_workers, watermarker, attacked, len(protected_small.mark))
        soft = detect_on(
            runner_workers, watermarker.with_code("soft"), attacked, len(protected_small.mark)
        )
        assert soft.code == "soft"
        hard_loss = mark_loss(protected_small.mark, hard.mark)
        soft_loss = mark_loss(protected_small.mark, soft.mark)
        assert soft_loss <= hard_loss
        assert len(soft.bit_confidence) == len(protected_small.mark)

    def test_runners_agree_bit_for_bit(self, attacked, protection_framework, protected_small):
        watermarker = protection_framework.watermarker()
        reports = [
            detect_on(runner_workers.values[0], watermarker, attacked, len(protected_small.mark))
            for runner_workers in RUNNERS
        ]
        reference = reports[0]
        for report in reports[1:]:
            assert report.mark == reference.mark
            assert report.wmd_bits == reference.wmd_bits
            assert report.votes_cast == reference.votes_cast
            assert report.bit_confidence == reference.bit_confidence


class TestMultiTenantCollision:
    """Two tenants share one vault; their marks must never cross-detect."""

    @pytest.fixture(scope="class")
    def tenancy(self, tmp_path_factory):
        from repro.datagen.medical import generate_medical_table
        from repro.service import KeyVault, ProtectionService

        root = tmp_path_factory.mktemp("tenancy")
        raw = str(root / "claims.csv")
        generate_medical_table(size=1200, seed=71).to_csv(raw)
        vault = KeyVault.init(str(root / "vault"))
        service = ProtectionService(vault)
        outputs = {}
        for tenant in ("alice", "bob"):
            service.register_tenant(tenant, k=10, eta=20, epsilon=5)
            output = str(root / f"{tenant}.csv")
            service.protect(tenant, raw, output, dataset_id=f"claims-{tenant}")
            outputs[tenant] = output
        return service, outputs

    def test_identical_data_collides_marks_but_not_secrets(self, tenancy):
        # The mark is F(statistic-of-identifiers) — a function of the data,
        # not the tenant — so two tenants protecting the same rows hold the
        # *same* mark bits.  Tenant separation rests entirely on the secrets.
        service, _ = tenancy
        alice = service.vault.dataset("alice", "claims-alice")
        bob = service.vault.dataset("bob", "claims-bob")
        assert alice.mark_bits == bob.mark_bits
        assert (
            service.vault.tenant("alice").watermark_secret
            != service.vault.tenant("bob").watermark_secret
        )

    @pytest.mark.parametrize("workers", [1, 4], ids=["serial", "parallel"])
    def test_own_mark_detects_cleanly(self, tenancy, workers):
        service, outputs = tenancy
        for tenant in ("alice", "bob"):
            outcome = service.detect(
                tenant, outputs[tenant], dataset_id=f"claims-{tenant}", workers=workers
            )
            assert outcome.mark_loss == 0.0
            assert outcome.matches is True

    def test_cross_detection_fails(self, tenancy):
        # Bob's secrets read noise out of Alice's table: roughly half the
        # mark bits disagree, nowhere near a valid detection.
        service, outputs = tenancy
        alice_mark = service.vault.dataset("alice", "claims-alice").mark_bits
        outcome = service.detect("bob", outputs["alice"], dataset_id="claims-bob")
        recovered = outcome.mark
        disagreement = sum(
            1 for a, b in zip(alice_mark, recovered) if a != b
        ) / len(alice_mark)
        assert disagreement > 0.2
        assert outcome.matches is not True
