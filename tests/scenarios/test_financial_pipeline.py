"""End-to-end protect/attack/detect over the financial-transactions domain.

The pipeline is schema-agnostic: everything the medical fixtures exercise
must work unchanged over a second domain with its own schema, DHTs and data
generator (:mod:`repro.ontology.finance`, :mod:`repro.datagen.finance`).
"""

import pytest

from repro.attacks.alteration import SubsetAlterationAttack
from repro.attacks.deletion import SubsetDeletionAttack
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.datagen.finance import generate_financial_table
from repro.framework.pipeline import ProtectionFramework
from repro.metrics.usage_metrics import UsageMetrics
from repro.ontology.finance import financial_ontology, financial_schema
from repro.watermarking.mark import mark_loss


@pytest.fixture(scope="module")
def finance_pipeline():
    table = generate_financial_table(size=1500, seed=7)
    trees = dict(financial_ontology().items())
    framework = ProtectionFramework(
        trees,
        UsageMetrics.uniform_depth(trees, 1),
        KAnonymitySpec(k=10, mode=EnforcementMode.MONO, epsilon=5),
        encryption_key="finance-encryption-key",
        watermark_secret="finance-watermark-secret",
        eta=20,
        mark_length=20,
        copies=4,
    )
    protected = framework.protect(table)
    return table, framework, protected


class TestFinancialProtection:
    def test_schema_has_numeric_identifiers(self):
        schema = financial_schema()
        assert [column.name for column in schema.identifying_columns] == ["account_id"]
        assert len(list(schema.quasi_identifying_columns)) == 4

    def test_generator_is_deterministic(self):
        assert generate_financial_table(size=300, seed=5) == generate_financial_table(
            size=300, seed=5
        )

    def test_registration_statistic_defined(self, finance_pipeline):
        _, _, protected = finance_pipeline
        # Ten-digit account ids are numeric, so the Section 4.2 statistic and
        # the data-bound mark exist for this domain too.
        assert protected.registered_statistic > 0
        assert len(protected.mark) == 20

    def test_k_anonymity_after_watermarking(self, finance_pipeline):
        _, _, protected = finance_pipeline
        for column in protected.watermarked.quasi_columns:
            sizes = protected.watermarked.bin_sizes(column)
            assert all(size >= 10 for size in sizes.values()), column

    def test_identifiers_encrypted(self, finance_pipeline):
        table, _, protected = finance_pipeline
        raw = set(table.column_values("account_id"))
        outsourced = set(protected.outsourced_table.column_values("account_id"))
        assert raw.isdisjoint(outsourced)


class TestFinancialDetection:
    def test_clean_detection_is_lossless(self, finance_pipeline):
        _, framework, protected = finance_pipeline
        assert framework.mark_loss(protected.watermarked, protected.mark) == 0.0

    def test_mark_survives_attacks(self, finance_pipeline):
        _, framework, protected = finance_pipeline
        for attack in (
            SubsetAlterationAttack(0.3, seed=41),
            SubsetDeletionAttack(0.3, seed=42),
        ):
            attacked = attack.run(protected.watermarked).attacked
            assert framework.mark_loss(attacked, protected.mark) <= 0.35, type(attack).__name__

    def test_soft_decoding_never_does_worse(self, finance_pipeline):
        _, framework, protected = finance_pipeline
        attacked = SubsetAlterationAttack(0.5, seed=43).run(protected.watermarked).attacked
        watermarker = framework.watermarker()
        votes = watermarker.collect_votes(attacked, len(protected.mark))
        hard = watermarker.finalize_votes(votes, len(protected.mark))
        soft = watermarker.with_code("soft").finalize_votes(votes, len(protected.mark))
        assert mark_loss(protected.mark, soft.mark) <= mark_loss(protected.mark, hard.mark)


class TestFinancialService:
    def test_csv_round_trip_through_the_service(self, tmp_path):
        from repro.service import KeyVault, ProtectionService

        raw = str(tmp_path / "transactions.csv")
        generate_financial_table(size=1200, seed=9).to_csv(raw)
        vault = KeyVault.init(str(tmp_path / "vault"))
        trees = dict(financial_ontology().items())
        service = ProtectionService(vault, schema=financial_schema(), trees=trees)
        service.register_tenant("acquirer", k=10, eta=20, epsilon=5)
        output = str(tmp_path / "protected.csv")
        service.protect("acquirer", raw, output)

        outcome = service.detect("acquirer", output, dataset_id="transactions")
        assert outcome.mark_loss == 0.0
        assert outcome.matches is True
        assert outcome.code == "repetition"

        soft = service.detect("acquirer", output, dataset_id="transactions", code="soft")
        assert soft.mark_loss == 0.0
        assert soft.code == "soft"
        assert len(soft.bit_confidence) == len(soft.mark)
