"""Tests for the command-line interface (protect / detect on CSV files)."""

import pytest

from repro.cli import main
from repro.datagen.medical import generate_medical_table


@pytest.fixture(scope="module")
def raw_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "raw.csv"
    generate_medical_table(size=800, seed=55).to_csv(str(path))
    return str(path)


COMMON = [
    "--k",
    "10",
    "--eta",
    "20",
    "--encryption-key",
    "cli-enc-key",
    "--watermark-secret",
    "cli-wm-secret",
]


class TestCLI:
    def test_protect_then_detect_roundtrip(self, raw_csv, tmp_path, capsys):
        protected_csv = str(tmp_path / "protected.csv")
        assert main(["protect", raw_csv, protected_csv, *COMMON]) == 0
        out = capsys.readouterr().out
        mark_line = next(line for line in out.splitlines() if "mark F(v)" in line)
        mark = mark_line.split(":")[1].strip()
        assert len(mark) == 20 and set(mark) <= {"0", "1"}

        exit_code = main(["detect", protected_csv, "--expected-mark", mark, *COMMON])
        detect_out = capsys.readouterr().out
        assert exit_code == 0
        assert "mark loss      : 0%" in detect_out

    def test_detect_with_wrong_secret_fails_threshold(self, raw_csv, tmp_path, capsys):
        protected_csv = str(tmp_path / "protected.csv")
        main(["protect", raw_csv, protected_csv, *COMMON])
        out = capsys.readouterr().out
        mark = next(line for line in out.splitlines() if "mark F(v)" in line).split(":")[1].strip()

        wrong = [arg if arg != "cli-wm-secret" else "some-other-secret" for arg in COMMON]
        exit_code = main(["detect", protected_csv, "--expected-mark", mark, *wrong])
        capsys.readouterr()
        assert exit_code == 1

    def test_protect_writes_encrypted_identifiers(self, raw_csv, tmp_path, capsys):
        protected_csv = str(tmp_path / "protected.csv")
        main(["protect", raw_csv, protected_csv, *COMMON])
        capsys.readouterr()
        with open(raw_csv, encoding="utf-8") as raw, open(protected_csv, encoding="utf-8") as protected:
            raw_ssns = {line.split(",")[0] for line in raw.readlines()[1:]}
            protected_ssns = {line.split(",")[0] for line in protected.readlines()[1:]}
        assert raw_ssns.isdisjoint(protected_ssns)

    def test_missing_required_arguments(self):
        with pytest.raises(SystemExit):
            main(["protect", "in.csv", "out.csv"])  # secrets missing
