"""Tests for the command-line interface (protect / detect on CSV files)."""

import json

import pytest

from repro.cli import main
from repro.datagen.medical import generate_medical_table


@pytest.fixture(scope="module")
def raw_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "raw.csv"
    generate_medical_table(size=800, seed=55).to_csv(str(path))
    return str(path)


COMMON = [
    "--k",
    "10",
    "--eta",
    "20",
    "--encryption-key",
    "cli-enc-key",
    "--watermark-secret",
    "cli-wm-secret",
]


class TestCLI:
    def test_protect_then_detect_roundtrip(self, raw_csv, tmp_path, capsys):
        protected_csv = str(tmp_path / "protected.csv")
        assert main(["protect", raw_csv, protected_csv, *COMMON]) == 0
        out = capsys.readouterr().out
        mark_line = next(line for line in out.splitlines() if "mark F(v)" in line)
        mark = mark_line.split(":")[1].strip()
        assert len(mark) == 20 and set(mark) <= {"0", "1"}

        exit_code = main(["detect", protected_csv, "--expected-mark", mark, *COMMON])
        detect_out = capsys.readouterr().out
        assert exit_code == 0
        assert "mark loss      : 0%" in detect_out

    def test_detect_with_wrong_secret_fails_threshold(self, raw_csv, tmp_path, capsys):
        protected_csv = str(tmp_path / "protected.csv")
        main(["protect", raw_csv, protected_csv, *COMMON])
        out = capsys.readouterr().out
        mark = next(line for line in out.splitlines() if "mark F(v)" in line).split(":")[1].strip()

        wrong = [arg if arg != "cli-wm-secret" else "some-other-secret" for arg in COMMON]
        exit_code = main(["detect", protected_csv, "--expected-mark", mark, *wrong])
        capsys.readouterr()
        assert exit_code == 1

    def test_protect_writes_encrypted_identifiers(self, raw_csv, tmp_path, capsys):
        protected_csv = str(tmp_path / "protected.csv")
        main(["protect", raw_csv, protected_csv, *COMMON])
        capsys.readouterr()
        with open(raw_csv, encoding="utf-8") as raw, open(protected_csv, encoding="utf-8") as protected:
            raw_ssns = {line.split(",")[0] for line in raw.readlines()[1:]}
            protected_ssns = {line.split(",")[0] for line in protected.readlines()[1:]}
        assert raw_ssns.isdisjoint(protected_ssns)

    def test_missing_required_arguments(self):
        with pytest.raises(SystemExit):
            main(["protect", "in.csv", "out.csv"])  # secrets missing, no vault

    def test_json_mode_protect_and_detect(self, raw_csv, tmp_path, capsys):
        protected_csv = str(tmp_path / "protected.csv")
        assert main(["protect", raw_csv, protected_csv, "--json", *COMMON]) == 0
        protect_payload = json.loads(capsys.readouterr().out)
        assert protect_payload["rows"] == 800
        assert set(protect_payload["mark"]) <= {"0", "1"}

        exit_code = main(
            ["detect", protected_csv, "--expected-mark", protect_payload["mark"], "--json", *COMMON]
        )
        detect_payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert detect_payload["mark"] == protect_payload["mark"]
        assert detect_payload["mark_loss"] == 0.0
        assert detect_payload["ok"] is True


class TestVaultCLI:
    """The cold-start workflow: every command is a fresh main() invocation."""

    @pytest.fixture(scope="class")
    def vault(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("vault-cli") / "vault")

    def test_full_vault_round_trip(self, raw_csv, vault, tmp_path, capsys):
        protected_csv = str(tmp_path / "protected.csv")
        # Fixed secrets: with random per-run keys, a rare draw can leave one
        # mark bit with no embed bandwidth at this small scale (800 rows,
        # eta=20), flipping a clean-detect bit — the test would flake.
        assert main(
            [
                "vault", "init", vault, "--k", "10", "--eta", "20", "--json",
                "--encryption-key", "cli-roundtrip-ek",
                "--watermark-secret", "cli-roundtrip-ws",
            ]
        ) == 0
        init_payload = json.loads(capsys.readouterr().out)
        assert init_payload["tenant"] == "owner"

        assert main(["protect", raw_csv, protected_csv, "--vault", vault, "--dataset", "d", "--json"]) == 0
        protect_payload = json.loads(capsys.readouterr().out)
        assert protect_payload["rows"] == 800

        # Detection re-derives everything from the vault: zero mark loss.
        exit_code = main(
            ["detect", protected_csv, "--vault", vault, "--dataset", "d", "--workers", "4", "--json"]
        )
        detect_payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert detect_payload["mark"] == protect_payload["mark"]
        assert detect_payload["mark_loss"] == 0.0

        # The dispute resolves from re-hydrated claims; the owner prevails.
        assert main(["dispute", protected_csv, "--vault", vault, "--dataset", "d", "--json"]) == 0
        dispute_payload = json.loads(capsys.readouterr().out)
        assert dispute_payload["winner"] == "owner"

        assert main(["vault", "status", vault, "--json"]) == 0
        status_payload = json.loads(capsys.readouterr().out)
        assert status_payload["tenants"]["owner"]["datasets"]["d"]["rows"] == 800

    def test_vault_init_twice_fails_cleanly(self, vault, capsys):
        assert main(["vault", "init", vault]) == 2
        assert "already initialised" in capsys.readouterr().err

    def test_detect_against_unknown_vault_errors(self, raw_csv, tmp_path, capsys):
        missing = str(tmp_path / "nowhere")
        assert main(["detect", raw_csv, "--vault", missing]) == 2
        assert "no vault" in capsys.readouterr().err

    def test_detect_unregistered_dataset_reports_ok_null(self, raw_csv, vault, tmp_path, capsys):
        """No vault record to compare against -> ok is null, not false."""
        protected_csv = str(tmp_path / "protected.csv")
        main(["protect", raw_csv, protected_csv, "--vault", vault, "--dataset", "d"])
        capsys.readouterr()
        exit_code = main(["detect", protected_csv, "--vault", vault, "--json"])  # dataset "protected"
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["expected_mark"] is None
        assert payload["mark_loss"] is None and payload["ok"] is None

    def test_explicit_parameters_conflict_with_vault(self, raw_csv, vault, tmp_path, capsys):
        """Vault mode must reject, not ignore, parameter and secret flags."""
        with pytest.raises(SystemExit):
            main(["detect", raw_csv, "--vault", vault, "--eta", "20"])
        assert "--eta conflict with --vault" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(
                ["protect", raw_csv, str(tmp_path / "o.csv"), "--vault", vault,
                 "--watermark-secret", "W"]
            )
        assert "--watermark-secret conflict with --vault" in capsys.readouterr().err


class TestExitCodesAndErrorJSON:
    """Satellite: uniform exit codes and {"error": ...} on --json failure paths."""

    def test_missing_vault_json_error(self, raw_csv, capsys):
        assert main(["detect", raw_csv, "--vault", "does-not-exist", "--json"]) == 2
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert set(payload) == {"error"}
        assert "no vault" in payload["error"]
        assert "error:" in captured.err

    def test_unknown_tenant_json_error(self, raw_csv, tmp_path, capsys):
        vault = str(tmp_path / "vault")
        main(["vault", "init", vault])
        capsys.readouterr()
        exit_code = main(
            ["protect", raw_csv, str(tmp_path / "o.csv"), "--vault", vault,
             "--tenant", "nobody", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 2
        assert "unknown tenant" in payload["error"]

    def test_bad_csv_json_error(self, tmp_path, capsys):
        vault = str(tmp_path / "vault")
        main(["vault", "init", vault])
        capsys.readouterr()
        bad = tmp_path / "bad.csv"
        bad.write_text("ssn,age,zip_code,doctor,symptom,prescription\n1,notanage,z,d,s,p\n")
        exit_code = main(
            ["protect", str(bad), str(tmp_path / "o.csv"), "--vault", vault, "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 2 and "error" in payload

    def test_missing_input_file_json_error(self, tmp_path, capsys):
        vault = str(tmp_path / "vault")
        main(["vault", "init", vault])
        capsys.readouterr()
        exit_code = main(
            ["detect", str(tmp_path / "nope.csv"), "--vault", vault, "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 2 and "error" in payload

    def test_url_and_vault_conflict(self, raw_csv, tmp_path):
        with pytest.raises(SystemExit):
            main(["detect", raw_csv, "--vault", str(tmp_path), "--url", "http://x:1"])

    def test_dispute_requires_exactly_one_mode(self, raw_csv):
        with pytest.raises(SystemExit):
            main(["dispute", raw_csv])
        with pytest.raises(SystemExit):
            main(["dispute", raw_csv, "--vault", "v", "--url", "http://x:1"])

    def test_vault_status_url_needs_tenant(self):
        with pytest.raises(SystemExit):
            main(["vault", "status", "--url", "http://x:1", "--token", "t"])

    def test_unreachable_server_json_error(self, raw_csv, tmp_path, capsys):
        exit_code = main(
            ["detect", raw_csv, "--url", "http://127.0.0.1:9", "--token", "t", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 2 and "error" in payload


class TestVaultTokenAndRunnerCLI:
    def test_vault_token_issues_and_rotates(self, tmp_path, capsys):
        vault = str(tmp_path / "vault")
        main(["vault", "init", vault])
        capsys.readouterr()
        assert main(["vault", "token", vault, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)["token"]
        assert main(["vault", "token", vault, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)["token"]
        assert first != second
        from repro.service.vault import KeyVault

        vault_obj = KeyVault(vault)
        assert vault_obj.verify_token("owner", second)
        assert not vault_obj.verify_token("owner", first)

    def test_detect_process_runner_vault_mode(self, raw_csv, tmp_path, capsys):
        vault = str(tmp_path / "vault")
        protected_csv = str(tmp_path / "protected.csv")
        main(["vault", "init", vault, "--k", "10", "--eta", "20"])
        main(["protect", raw_csv, protected_csv, "--vault", vault, "--dataset", "d"])
        capsys.readouterr()
        exit_code = main(
            ["detect", protected_csv, "--vault", vault, "--dataset", "d",
             "--workers", "2", "--runner", "process", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["runner"] == "process"
        assert payload["mark_loss"] == 0.0 and payload["ok"] is True


class TestExplicitModeRunnerRejected:
    def test_workers_and_runner_need_vault_or_url(self, raw_csv):
        with pytest.raises(SystemExit):
            main(["detect", raw_csv, *COMMON, "--workers", "4"])
        with pytest.raises(SystemExit):
            main(["detect", raw_csv, *COMMON, "--runner", "process"])


class TestRemoteRunnerCLI:
    """Satellite: empty-fleet and dead-worker paths exit 2 with {"error"} JSON."""

    @pytest.fixture(scope="class")
    def remote_env(self, raw_csv, tmp_path_factory):
        base = tmp_path_factory.mktemp("remote-cli")
        vault = str(base / "vault")
        protected_csv = str(base / "protected.csv")
        main(["vault", "init", vault, "--k", "10", "--eta", "20"])
        main(["protect", raw_csv, protected_csv, "--vault", vault, "--dataset", "d"])
        return vault, protected_csv

    def test_empty_fleet_exits_2_with_error_json(self, remote_env, capsys):
        vault, protected_csv = remote_env
        capsys.readouterr()
        exit_code = main(
            ["detect", protected_csv, "--vault", vault, "--dataset", "d",
             "--runner", "remote", "--json"]
        )
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert exit_code == 2
        assert set(payload) == {"error"}
        assert "worker url" in payload["error"]
        assert "error:" in captured.err

    def test_dead_worker_exits_2_with_error_json(self, remote_env, capsys):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        dead = f"http://127.0.0.1:{sock.getsockname()[1]}"
        sock.close()
        vault, protected_csv = remote_env
        capsys.readouterr()
        exit_code = main(
            ["detect", protected_csv, "--vault", vault, "--dataset", "d",
             "--runner", "remote", "--worker-url", dead, "--json"]
        )
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert exit_code == 2
        assert set(payload) == {"error"}
        assert "worker" in payload["error"]

    def test_live_fleet_detects_identically_to_thread(self, remote_env, capsys):
        from repro.service import KeyVault, ProtectionService
        from repro.service.http import ProtectionApp
        from repro.service.http.server import serve_in_thread

        vault, protected_csv = remote_env
        worker = ProtectionService(KeyVault(vault))
        server, url = serve_in_thread(ProtectionApp(worker))
        try:
            capsys.readouterr()
            assert main(
                ["detect", protected_csv, "--vault", vault, "--dataset", "d", "--json"]
            ) == 0
            thread_payload = json.loads(capsys.readouterr().out)
            exit_code = main(
                ["detect", protected_csv, "--vault", vault, "--dataset", "d",
                 "--runner", "remote", "--worker-url", url, "--json"]
            )
            remote_payload = json.loads(capsys.readouterr().out)
            assert exit_code == 0
            assert remote_payload["runner"] == "remote"
            assert remote_payload["mark"] == thread_payload["mark"]
            assert remote_payload["rows"] == thread_payload["rows"]
            assert remote_payload["tuples_selected"] == thread_payload["tuples_selected"]
            assert remote_payload["ok"] is True and remote_payload["mark_loss"] == 0.0
        finally:
            server.shutdown()
            server.server_close()

    def test_worker_url_requires_remote_runner(self, remote_env):
        vault, protected_csv = remote_env
        with pytest.raises(SystemExit):
            main(["detect", protected_csv, "--vault", vault, "--worker-url", "http://x:1"])

    def test_worker_token_and_timeout_require_remote_runner(self, remote_env):
        """Fleet flags are rejected, never silently dropped, outside remote mode."""
        vault, protected_csv = remote_env
        with pytest.raises(SystemExit):
            main(["detect", protected_csv, "--vault", vault, "--worker-token", "secret"])
        with pytest.raises(SystemExit):
            main(["detect", protected_csv, "--vault", vault, "--worker-timeout", "5"])

    def test_url_client_mode_rejects_remote_runner(self, remote_env):
        _, protected_csv = remote_env
        with pytest.raises(SystemExit):
            main(["detect", protected_csv, "--url", "http://x:1", "--token", "t",
                  "--runner", "remote"])


class TestBackendAndAuditCLI:
    """vault init --backend / vault migrate / audit verify round trips."""

    def test_init_sqlite_backend_and_status(self, tmp_path, capsys):
        import os

        vault = str(tmp_path / "vault")
        assert main(["vault", "init", vault, "--backend", "sqlite", "--json", *COMMON]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "sqlite"
        assert os.path.exists(os.path.join(vault, "registry.db"))
        assert main(["vault", "status", vault, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["backend"] == "sqlite"

    def test_init_via_sqlite_path_scheme(self, tmp_path, capsys):
        import os

        vault = str(tmp_path / "vault")
        assert main(["vault", "init", f"sqlite:{vault}", *COMMON]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(vault, "registry.db"))

    @pytest.mark.parametrize("backend", ["file", "sqlite"])
    def test_audit_verify_tracks_the_pipeline(self, raw_csv, tmp_path, capsys, backend):
        vault = str(tmp_path / "vault")
        protected_csv = str(tmp_path / "protected.csv")
        assert main(["vault", "init", vault, "--backend", backend, *COMMON]) == 0
        assert main(["protect", raw_csv, protected_csv, "--vault", vault, "--dataset", "d"]) == 0
        assert main(["dispute", protected_csv, "--vault", vault, "--dataset", "d"]) == 0
        capsys.readouterr()
        assert main(["audit", "verify", "--vault", vault, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        # init registers the owner (1) + protect (2) + dispute's detect-free
        # verdict (1) = at least 3 records; exact count is the chain's length.
        assert payload["records"] >= 3
        assert len(payload["head"]) == 64

    def test_audit_verify_reports_broken_chain(self, tmp_path, capsys):
        import os

        vault = str(tmp_path / "vault")
        # Explicit file backend: this test edits the JSONL chain on disk.
        assert main(["vault", "init", vault, "--backend", "file", *COMMON]) == 0
        log_path = os.path.join(vault, "audit.log")
        with open(log_path, encoding="utf-8") as handle:
            content = handle.read()
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.write(content.replace('"register"', '"detect"', 1))
        capsys.readouterr()
        assert main(["audit", "verify", "--vault", vault, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["failed_index"] == 0

    def test_vault_migrate_file_to_sqlite(self, raw_csv, tmp_path, capsys):
        source = str(tmp_path / "src")
        destination = str(tmp_path / "dst")
        protected_csv = str(tmp_path / "protected.csv")
        assert main(["vault", "init", source, "--backend", "file", *COMMON]) == 0
        assert main(["protect", raw_csv, protected_csv, "--vault", source, "--dataset", "d"]) == 0
        capsys.readouterr()
        assert main(
            ["vault", "migrate", source, destination, "--backend", "sqlite", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "sqlite"
        assert payload["tenants"] == 1
        # The migrated vault answers detect/dispute identically, cold.
        assert main(
            ["detect", protected_csv, "--vault", destination, "--dataset", "d", "--json"]
        ) == 0
        detect_payload = json.loads(capsys.readouterr().out)
        assert detect_payload["ok"] is True and detect_payload["mark_loss"] == 0.0
        assert main(["audit", "verify", "--vault", destination]) == 0
