"""Tests for the seamlessness analysis (Lemmas 1-2, Figure 14, Figure 13)."""

import pytest

from repro.attacks.alteration import SubsetAlterationAttack
from repro.framework.analysis import (
    pr_minus,
    pr_plus,
    seamlessness_report,
    suggest_epsilon,
    watermarking_information_loss,
)


class TestLemmas:
    def test_closed_form(self):
        # n_k = 4, groups (4, 3, 5): Pr- = (4-1)/(4*12) = 1/16.
        assert pr_minus(4, [4, 3, 5]) == pytest.approx(3 / 48)
        assert pr_plus(4, [4, 3, 5]) == pytest.approx(3 / 48)

    def test_pr_minus_equals_pr_plus_always(self):
        for n_k, groups in ((2, [2, 5]), (7, [7]), (3, [3, 3, 3, 3])):
            assert pr_minus(n_k, groups) == pr_plus(n_k, groups)

    def test_single_ultimate_node_cannot_change(self):
        # n_k = 1: the permutation can only land back on the same bin.
        assert pr_minus(1, [1, 4]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pr_minus(0, [1, 2])
        with pytest.raises(ValueError):
            pr_minus(4, [3, 5])  # n_k not among the groups

    def test_matches_monte_carlo(self):
        from repro.experiments.ablations import run_seamlessness_theory_check

        point = run_seamlessness_theory_check(group_sizes=(4, 3, 5), n_k=4, trials=30_000, seed=1)
        assert point.pr_minus_simulated == pytest.approx(point.pr_minus_theory, abs=0.01)
        assert point.pr_plus_simulated == pytest.approx(point.pr_plus_theory, abs=0.01)


class TestSuggestEpsilon:
    def test_formula(self):
        # s=50, S=100, |wmd|=80 -> 40.
        assert suggest_epsilon([50, 30, 20], 80) == 40

    def test_empty_bins(self):
        assert suggest_epsilon([], 80) == 0
        assert suggest_epsilon([0, 0], 80) == 0

    def test_zero_wmd(self):
        assert suggest_epsilon([10, 10], 0) == 0

    def test_negative_wmd_rejected(self):
        with pytest.raises(ValueError):
            suggest_epsilon([10], -1)


class TestSeamlessnessReport:
    def test_fig14_shape(self, protected_small):
        report = seamlessness_report(protected_small.binned, protected_small.watermarked)
        assert report.k == 10
        assert {column.column for column in report.columns} == set(protected_small.binned.quasi_columns)
        rows = report.as_rows()
        assert len(rows) == len(report.columns)
        for _, total, changed, below in rows:
            assert 0 <= changed <= total + 5
            assert below >= 0

    def test_watermarking_does_not_break_k_anonymity(self, protected_small):
        """The headline Figure 14 claim: no bin drops below k."""
        report = seamlessness_report(protected_small.binned, protected_small.watermarked)
        assert not report.any_bin_below_k

    def test_many_bins_change_but_identity_comparison_is_clean(self, protected_small):
        report = seamlessness_report(protected_small.binned, protected_small.watermarked)
        assert sum(column.bins_changed for column in report.columns) > 0
        unchanged = seamlessness_report(protected_small.binned, protected_small.binned)
        assert all(column.bins_changed == 0 for column in unchanged.columns)

    def test_explicit_k_override(self, protected_small):
        report = seamlessness_report(protected_small.binned, protected_small.watermarked, k=1)
        assert report.k == 1
        assert not report.any_bin_below_k


class TestWatermarkingInformationLoss:
    def test_zero_for_identical_tables(self, protected_small):
        losses = watermarking_information_loss(protected_small.binned, protected_small.binned)
        assert losses["__normalized__"] == 0.0

    def test_positive_but_small_for_watermarked_table(self, protected_small):
        losses = watermarking_information_loss(protected_small.binned, protected_small.watermarked)
        assert 0.0 < losses["__normalized__"] < 0.1
        assert set(losses) == set(protected_small.binned.quasi_columns) | {"__normalized__"}

    def test_grows_with_heavier_modification(self, protected_small):
        light = watermarking_information_loss(protected_small.binned, protected_small.watermarked)
        heavy_table = SubsetAlterationAttack(0.6, seed=0).run(protected_small.binned).attacked
        heavy = watermarking_information_loss(protected_small.binned, heavy_table)
        assert heavy["__normalized__"] > light["__normalized__"]

    def test_row_count_mismatch_rejected(self, protected_small):
        from repro.attacks.deletion import SubsetDeletionAttack

        attacked = SubsetDeletionAttack(0.2, seed=0).run(protected_small.watermarked).attacked
        with pytest.raises(ValueError):
            watermarking_information_loss(protected_small.binned, attacked)
