"""Tests for the unified ProtectionFramework (Figure 2)."""

import pytest

from repro.attacks.alteration import SubsetAlterationAttack
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.framework.pipeline import ProtectionFramework
from repro.metrics.usage_metrics import UsageMetrics
from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema
from repro.relational.table import Table
from repro.watermarking.mark import mark_loss


class TestProtect:
    def test_protected_data_contents(self, protected_small, medium_table):
        assert len(protected_small.watermarked.table) == len(medium_table)
        assert len(protected_small.binned.table) == len(medium_table)
        assert protected_small.outsourced_table is protected_small.watermarked.table
        assert len(protected_small.mark) == 20
        assert protected_small.registered_statistic > 0
        assert protected_small.binning_result.binned is protected_small.binned
        assert protected_small.embedding_report.watermarked is protected_small.watermarked

    def test_watermarked_differs_from_binned(self, protected_small):
        assert protected_small.watermarked.table != protected_small.binned.table

    def test_outsourced_table_contains_no_raw_identifiers(self, protected_small, medium_table):
        raw = set(medium_table.column_values("ssn"))
        outsourced = set(protected_small.outsourced_table.column_values("ssn"))
        assert raw.isdisjoint(outsourced)

    def test_mark_derived_from_identifier_statistic(self, protection_framework, protected_small, medium_table):
        statistic, mark = protection_framework.registry.derive_mark(medium_table.column_values("ssn"))
        assert statistic == pytest.approx(protected_small.registered_statistic)
        assert mark == protected_small.mark

    def test_detect_on_clean_table(self, protection_framework, protected_small):
        report = protection_framework.detect(protected_small.watermarked)
        assert report.mark == protected_small.mark
        assert protection_framework.mark_loss(protected_small.watermarked, protected_small.mark) == 0.0

    def test_mark_loss_under_attack_is_bounded(self, protection_framework, protected_small):
        attacked = SubsetAlterationAttack(0.4, seed=1).run(protected_small.watermarked).attacked
        loss = protection_framework.mark_loss(attacked, protected_small.mark)
        assert 0.0 <= loss <= 0.6

    def test_requires_identifying_column(self, trees, depth1_metrics):
        framework = ProtectionFramework(
            trees,
            depth1_metrics,
            KAnonymitySpec(k=2, mode=EnforcementMode.MONO),
            encryption_key="k",
            watermark_secret="w",
        )
        schema = TableSchema((Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC),))
        table = Table(schema, [{"age": 30}] * 5)
        with pytest.raises(ValueError):
            framework.protect(table)

    def test_owner_claim_requires_protect_first(self, trees, depth1_metrics):
        framework = ProtectionFramework(
            trees,
            depth1_metrics,
            KAnonymitySpec(k=2, mode=EnforcementMode.MONO),
            encryption_key="k",
            watermark_secret="w",
        )
        with pytest.raises(RuntimeError):
            framework.owner_claim()

    def test_owner_claim_fields(self, protection_framework, protected_small):
        claim = protection_framework.owner_claim("hospital")
        assert claim.claimant == "hospital"
        assert claim.mark == protected_small.mark
        assert claim.registered_statistic == pytest.approx(protected_small.registered_statistic)
        assert claim.watermark_key == protection_framework.watermark_key

    def test_configuration_accessors(self, protection_framework):
        assert protection_framework.mark_length == 20
        assert protection_framework.watermark_key.eta == 25
        assert protection_framework.watermarker().copies == 4


class TestEndToEndVariants:
    def test_joint_mode_pipeline(self, trees, small_table):
        framework = ProtectionFramework(
            trees,
            UsageMetrics.uniform_depth(trees, 0),
            KAnonymitySpec(k=5, mode=EnforcementMode.JOINT),
            encryption_key="k",
            watermark_secret="w",
            eta=4,
            copies=1,
        )
        protected = framework.protect(small_table)
        sizes = protected.binned.joint_bin_sizes()
        assert all(size >= 5 for size in sizes.values())
        # Joint binning on a small table collapses several columns to the
        # root, which shrinks the watermark bandwidth; the mark must still be
        # recovered essentially intact from the remaining channel.
        loss = mark_loss(protected.mark, framework.detect(protected.watermarked).mark)
        assert loss <= 0.05

    def test_restricted_watermark_columns(self, trees, depth1_metrics, small_table):
        framework = ProtectionFramework(
            trees,
            depth1_metrics,
            KAnonymitySpec(k=5, mode=EnforcementMode.MONO),
            encryption_key="k",
            watermark_secret="w",
            eta=10,
            watermark_columns=("symptom", "prescription"),
        )
        protected = framework.protect(small_table)
        assert protected.watermarked.table.column_values("age") == protected.binned.table.column_values("age")
        assert framework.detect(protected.watermarked).mark == protected.mark

    def test_different_secrets_give_independent_marks(self, trees, depth1_metrics, small_table):
        spec = KAnonymitySpec(k=5, mode=EnforcementMode.MONO)
        fw_a = ProtectionFramework(
            trees, depth1_metrics, spec, encryption_key="k", watermark_secret="alpha", eta=10
        )
        fw_b = ProtectionFramework(
            trees, depth1_metrics, spec, encryption_key="k", watermark_secret="beta", eta=10
        )
        protected_a = fw_a.protect(small_table)
        # Detection with the wrong framework's key misreads the mark.
        assert mark_loss(protected_a.mark, fw_b.detect(protected_a.watermarked).mark) > 0.1
