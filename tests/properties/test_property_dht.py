"""Property-based tests for domain hierarchy trees and generalization cuts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binning.generalization import Generalization
from repro.dht.builders import binary_numeric_tree, from_nested_mapping
from repro.dht.cuts import enumerate_cuts
from repro.metrics.information_loss import column_information_loss, leaf_counts, specificity_loss


@st.composite
def categorical_trees(draw):
    """Random 3-level categorical hierarchies with unique labels."""
    n_groups = draw(st.integers(2, 4))
    spec = {}
    label = 0
    for group_index in range(n_groups):
        n_leaves = draw(st.integers(1, 4))
        spec[f"group-{group_index}"] = [f"leaf-{label + i}" for i in range(n_leaves)]
        label += n_leaves
    return from_nested_mapping("attr", "root", spec)


@st.composite
def numeric_trees(draw):
    lower = draw(st.integers(0, 50))
    width = draw(st.integers(2, 16))
    n_intervals = draw(st.integers(1, 12))
    return binary_numeric_tree("num", lower, lower + width * n_intervals, n_intervals=n_intervals)


class TestTreeInvariants:
    @given(tree=categorical_trees())
    @settings(max_examples=40, deadline=None)
    def test_every_leaf_resolves_to_itself(self, tree):
        for leaf in tree.leaves():
            assert tree.leaf_for_raw(leaf.value) is leaf

    @given(tree=numeric_trees(), offset=st.floats(0, 0.999))
    @settings(max_examples=40, deadline=None)
    def test_numeric_leaves_partition_domain(self, tree, offset):
        domain = tree.root.value
        probe = domain.lower + offset * domain.width
        leaf = tree.leaf_for_raw(probe)
        assert leaf.value.contains(probe)
        covered = sum(leaf.value.width for leaf in tree.leaves())
        assert abs(covered - domain.width) < 1e-9

    @given(tree=st.one_of(categorical_trees(), numeric_trees()))
    @settings(max_examples=40, deadline=None)
    def test_siblings_always_contain_the_node(self, tree):
        for node in tree.nodes:
            siblings = tree.siblings(node)
            assert node in siblings
            assert siblings == sorted(siblings, key=lambda n: n.sort_key)

    @given(tree=st.one_of(categorical_trees(), numeric_trees()))
    @settings(max_examples=30, deadline=None)
    def test_all_enumerated_cuts_are_valid(self, tree):
        for cut in enumerate_cuts(tree, limit=400):
            assert tree.is_valid_cut(cut)

    @given(tree=categorical_trees())
    @settings(max_examples=30, deadline=None)
    def test_root_and_leaf_cuts_bound_specificity_loss(self, tree):
        for cut in enumerate_cuts(tree, limit=400):
            loss = specificity_loss(tree, cut)
            assert 0.0 <= loss <= specificity_loss(tree, tree.root_cut()) + 1e-12


class TestGeneralizationInvariants:
    @given(tree=categorical_trees(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_generalized_value_is_ancestor_of_raw(self, tree, data):
        cuts = enumerate_cuts(tree, limit=400)
        cut = data.draw(st.sampled_from(cuts))
        generalization = Generalization(tree, cut)
        leaf = data.draw(st.sampled_from(tree.leaves()))
        node = generalization.node_for_raw(leaf.value)
        assert node is leaf or node.is_ancestor_of(leaf)

    @given(tree=categorical_trees(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_information_loss_within_unit_interval_and_monotone(self, tree, data):
        leaves = tree.leaves()
        values = data.draw(st.lists(st.sampled_from([leaf.value for leaf in leaves]), min_size=1, max_size=40))
        counts = leaf_counts(tree, values)
        cuts = enumerate_cuts(tree, limit=400)
        cut = data.draw(st.sampled_from(cuts))
        loss = column_information_loss(tree, cut, counts)
        root_loss = column_information_loss(tree, tree.root_cut(), counts)
        leaf_loss = column_information_loss(tree, tree.leaf_cut(), counts)
        assert 0.0 <= loss <= 1.0
        assert leaf_loss <= loss + 1e-12
        assert loss <= root_loss + 1e-12

    @given(tree=categorical_trees(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_cut_mapping_is_total_and_consistent(self, tree, data):
        cuts = enumerate_cuts(tree, limit=400)
        cut = data.draw(st.sampled_from(cuts))
        mapping = tree.cut_mapping(cut)
        assert set(mapping) == set(tree.leaves())
        for leaf, node in mapping.items():
            assert node is leaf or node.is_ancestor_of(leaf)
