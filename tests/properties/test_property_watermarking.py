"""Property-based tests for marks, voting and the embedding primitive."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.mark import Mark, majority_vote, mark_loss, replicate_mark

BITS = st.lists(st.integers(0, 1), min_size=1, max_size=64)


class TestMarkProperties:
    @given(bits=BITS)
    @settings(max_examples=80, deadline=None)
    def test_string_roundtrip(self, bits):
        mark = Mark.from_bits(bits)
        assert Mark.from_string(str(mark)) == mark

    @given(bits=BITS)
    @settings(max_examples=80, deadline=None)
    def test_self_loss_is_zero(self, bits):
        mark = Mark.from_bits(bits)
        assert mark_loss(mark, mark) == 0.0

    @given(bits=BITS)
    @settings(max_examples=80, deadline=None)
    def test_loss_against_complement_is_one(self, bits):
        mark = Mark.from_bits(bits)
        complement = Mark.from_bits(1 - bit for bit in bits)
        assert mark_loss(mark, complement) == 1.0

    @given(a=BITS, data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_loss_is_symmetric_and_bounded(self, a, data):
        b = data.draw(st.lists(st.integers(0, 1), min_size=len(a), max_size=len(a)))
        mark_a, mark_b = Mark.from_bits(a), Mark.from_bits(b)
        assert mark_loss(mark_a, mark_b) == mark_loss(mark_b, mark_a)
        assert 0.0 <= mark_loss(mark_a, mark_b) <= 1.0

    @given(bits=BITS, copies=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_replication_length_and_content(self, bits, copies):
        replicated = replicate_mark(Mark.from_bits(bits), copies)
        assert len(replicated) == copies * len(bits)
        for index, bit in enumerate(replicated):
            assert bit == bits[index % len(bits)]


class TestMajorityVoteProperties:
    @given(votes=st.lists(st.integers(0, 1), min_size=1, max_size=25))
    @settings(max_examples=80, deadline=None)
    def test_unanimous_votes_win(self, votes):
        assert majority_vote([votes[0]] * len(votes)) == votes[0]

    @given(votes=st.lists(st.integers(0, 1), min_size=1, max_size=25), tie=st.integers(0, 1))
    @settings(max_examples=80, deadline=None)
    def test_result_is_a_bit_and_respects_strict_majority(self, votes, tie):
        result = majority_vote(votes, tie_value=tie)
        assert result in (0, 1)
        ones = sum(votes)
        zeros = len(votes) - ones
        if ones > zeros:
            assert result == 1
        elif zeros > ones:
            assert result == 0
        else:
            assert result == tie


class TestEncodeParityProperties:
    @given(size=st.integers(2, 40), base=st.data(), bit=st.integers(0, 1))
    @settings(max_examples=120, deadline=None)
    def test_encoded_index_in_range_with_correct_parity(self, size, base, bit):
        index = base.draw(st.integers(0, size - 1))
        encoded = HierarchicalWatermarker._encode_parity(index, bit, size)
        assert 0 <= encoded < size
        assert encoded % 2 == bit

    @given(base=st.integers(0, 0), bit=st.integers(0, 1))
    @settings(max_examples=10, deadline=None)
    def test_singleton_sets_always_return_zero(self, base, bit):
        assert HierarchicalWatermarker._encode_parity(base, bit, 1) == 0
