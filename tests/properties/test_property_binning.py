"""Property-based tests for the binning invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binning.errors import NotBinnableError
from repro.binning.generalization import Generalization
from repro.binning.mono import gen_min_nodes, num_tuples_under
from repro.dht.builders import from_nested_mapping
from repro.metrics.information_loss import column_information_loss, leaf_counts


@st.composite
def tree_and_counts(draw):
    """A random 3-level hierarchy plus random per-leaf counts."""
    n_groups = draw(st.integers(2, 4))
    spec = {}
    label = 0
    for group_index in range(n_groups):
        n_leaves = draw(st.integers(1, 4))
        spec[f"group-{group_index}"] = [f"leaf-{label + i}" for i in range(n_leaves)]
        label += n_leaves
    tree = from_nested_mapping("attr", "root", spec)
    counts = {leaf: draw(st.integers(0, 30)) for leaf in tree.leaves()}
    return tree, counts


class TestMonoBinningInvariants:
    @given(payload=tree_and_counts(), k=st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_minimal_nodes_form_a_valid_k_anonymous_cut(self, payload, k):
        tree, counts = payload
        try:
            minimal = gen_min_nodes(tree, [tree.root], counts, k)
        except NotBinnableError:
            # Only legitimate when the whole table is smaller than k.
            assert sum(counts.values()) < k
            return
        assert tree.is_valid_cut(minimal)
        for node in minimal:
            covered = num_tuples_under(node, counts)
            assert covered == 0 or covered >= k

    @given(payload=tree_and_counts(), k=st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_no_child_of_a_refined_minimal_node_could_do_better(self, payload, k):
        """Minimality: an internal minimal node has at least one undersized child."""
        tree, counts = payload
        try:
            minimal = gen_min_nodes(tree, [tree.root], counts, k)
        except NotBinnableError:
            return
        for node in minimal:
            if node.is_leaf or num_tuples_under(node, counts) == 0:
                continue
            children = tree.children(node)
            assert any(num_tuples_under(child, counts) < k for child in children)

    @given(payload=tree_and_counts(), small_k=st.integers(1, 10), extra=st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_information_loss_is_monotone_in_k(self, payload, small_k, extra):
        tree, counts = payload
        big_k = small_k + extra
        try:
            fine = gen_min_nodes(tree, [tree.root], counts, small_k)
            coarse = gen_min_nodes(tree, [tree.root], counts, big_k)
        except NotBinnableError:
            return
        fine_loss = column_information_loss(tree, fine, counts)
        coarse_loss = column_information_loss(tree, coarse, counts)
        assert fine_loss <= coarse_loss + 1e-12

    @given(payload=tree_and_counts(), k=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_minimal_cut_refines_the_maximal_frontier(self, payload, k):
        tree, counts = payload
        maximal = tree.children(tree.root) if not tree.root.is_leaf else [tree.root]
        try:
            minimal = gen_min_nodes(tree, maximal, counts, k)
        except NotBinnableError:
            return
        minimal_gen = Generalization(tree, minimal)
        maximal_gen = Generalization(tree, maximal)
        assert minimal_gen.is_refinement_of(maximal_gen)
