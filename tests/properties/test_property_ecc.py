"""Property-based tests for the pluggable mark-coding layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.watermarking.ecc import (
    InterleavedBlockCode,
    RepetitionCode,
    SoftRepetitionCode,
)
from repro.watermarking.mark import majority_vote, vote_margin

BITS = st.lists(st.integers(0, 1), min_size=1, max_size=32)

# Sparse vote dicts over a small channel: position -> non-empty vote list.
VOTE_DICTS = st.dictionaries(
    keys=st.integers(0, 59),
    values=st.lists(st.integers(0, 1), min_size=1, max_size=7),
    max_size=40,
)


def clean_votes(encoded):
    """One clean vote per channel position — the noiseless channel."""
    return {position: [bit] for position, bit in enumerate(encoded)}


class TestBandwidthContract:
    @given(bits=BITS, copies=st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_every_code_fills_the_channel_exactly(self, bits, copies):
        for code in (RepetitionCode(), SoftRepetitionCode(), InterleavedBlockCode()):
            encoded = code.encode(bits, copies)
            assert len(encoded) == len(bits) * copies
            assert all(bit in (0, 1) for bit in encoded)


class TestCleanRoundtrip:
    @given(bits=BITS, copies=st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_noiseless_channel_roundtrips(self, bits, copies):
        for code in (RepetitionCode(), SoftRepetitionCode(), InterleavedBlockCode()):
            encoded = code.encode(bits, copies)
            result = code.decode(clean_votes(encoded), len(bits), copies)
            assert list(result.mark_bits) == bits, code.name
            assert all(0.0 <= c <= 1.0 for c in result.bit_confidence)


class TestCorrectionRadius:
    @given(bits=BITS, copies=st.integers(1, 8), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_corruption_within_radius_roundtrips(self, bits, copies, data):
        for code in (RepetitionCode(), SoftRepetitionCode(), InterleavedBlockCode()):
            radius = code.correction_radius(len(bits), copies)
            encoded = code.encode(bits, copies)
            flips = data.draw(
                st.lists(
                    st.integers(0, len(encoded) - 1),
                    max_size=radius,
                    unique=True,
                ),
                label=f"{code.name} flips",
            )
            votes = clean_votes(encoded)
            for position in flips:
                votes[position] = [1 - encoded[position]]
            result = code.decode(votes, len(bits), copies)
            assert list(result.mark_bits) == bits, (code.name, flips)

    @given(bits=BITS, copies=st.integers(1, 8), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_erasures_within_radius_roundtrip(self, bits, copies, data):
        for code in (RepetitionCode(), SoftRepetitionCode(), InterleavedBlockCode()):
            radius = code.correction_radius(len(bits), copies)
            encoded = code.encode(bits, copies)
            erased = data.draw(
                st.lists(
                    st.integers(0, len(encoded) - 1),
                    max_size=radius,
                    unique=True,
                ),
                label=f"{code.name} erasures",
            )
            votes = clean_votes(encoded)
            for position in erased:
                del votes[position]
            result = code.decode(votes, len(bits), copies)
            assert list(result.mark_bits) == bits, (code.name, erased)


class TestRepetitionEquivalence:
    @given(votes=VOTE_DICTS, mark_length=st.integers(1, 10), copies=st.integers(1, 6))
    @settings(max_examples=120, deadline=None)
    def test_decode_matches_two_stage_majority_vote(self, votes, mark_length, copies):
        wmd_length = mark_length * copies
        votes = {p: v for p, v in votes.items() if p < wmd_length}
        result = RepetitionCode().decode(votes, mark_length, copies)
        wmd_bits = [
            majority_vote(votes[p]) if p in votes else 0 for p in range(wmd_length)
        ]
        assert list(result.wmd_bits) == wmd_bits
        for bit_index in range(mark_length):
            copy_votes = [
                wmd_bits[position]
                for position in range(bit_index, wmd_length, mark_length)
                if position in votes
            ]
            expected = majority_vote(copy_votes) if copy_votes else 0
            assert result.mark_bits[bit_index] == expected
        assert result.corrected_bits == 0

    @given(votes=VOTE_DICTS, mark_length=st.integers(1, 10), copies=st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_soft_reports_its_disagreement_with_hard_decode(self, votes, mark_length, copies):
        votes = {p: v for p, v in votes.items() if p < mark_length * copies}
        hard = RepetitionCode().decode(votes, mark_length, copies)
        soft = SoftRepetitionCode().decode(votes, mark_length, copies)
        disagreements = sum(
            1 for h, s in zip(hard.mark_bits, soft.mark_bits) if h != s
        )
        assert soft.corrected_bits == disagreements


class TestVoteMarginProperties:
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 1), st.floats(0.0, 10.0, allow_nan=False)),
            min_size=1,
            max_size=12,
        ),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_weighted_margin_is_permutation_invariant(self, pairs, data):
        shuffled = data.draw(st.permutations(pairs))
        votes = [vote for vote, _ in pairs]
        weights = [weight for _, weight in pairs]
        shuffled_votes = [vote for vote, _ in shuffled]
        shuffled_weights = [weight for _, weight in shuffled]
        assert vote_margin(votes, weights=weights) == vote_margin(
            shuffled_votes, weights=shuffled_weights
        )
        assert majority_vote(votes, weights=weights, tie_value=1) == majority_vote(
            shuffled_votes, weights=shuffled_weights, tie_value=1
        )

    @given(votes=st.lists(st.integers(0, 1), min_size=1, max_size=25))
    @settings(max_examples=80, deadline=None)
    def test_unweighted_margin_agrees_with_counts(self, votes):
        assert vote_margin(votes) == float(2 * sum(votes) - len(votes))

    @given(
        weights=st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=10),
        tie=st.integers(0, 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_mirrored_weights_always_tie(self, weights, tie):
        # Equal weight mass on both sides must hit the tie branch exactly,
        # regardless of float accumulation order.
        votes = [1] * len(weights) + [0] * len(weights)
        assert vote_margin(votes, weights=weights + weights) == 0.0
        assert majority_vote(votes, weights=weights + weights, tie_value=tie) == tie
