"""Property-based tests for the cryptographic substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cipher import FeistelCipher, FieldEncryptor
from repro.crypto.hashing import keyed_hash, one_way_bits
from repro.crypto.prng import DeterministicPRNG

BLOCKS = st.integers(min_value=0, max_value=2**64 - 1)
KEYS = st.text(min_size=1, max_size=16)
TEXTS = st.text(max_size=60)


class TestCipherProperties:
    @given(block=BLOCKS, key=KEYS)
    @settings(max_examples=60, deadline=None)
    def test_feistel_roundtrip(self, block, key):
        cipher = FeistelCipher(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(value=TEXTS, key=KEYS)
    @settings(max_examples=60, deadline=None)
    def test_field_encryptor_roundtrip(self, value, key):
        encryptor = FieldEncryptor(key)
        assert encryptor.decrypt(encryptor.encrypt(value)) == value

    @given(value=TEXTS, key=KEYS)
    @settings(max_examples=60, deadline=None)
    def test_field_encryptor_tokens_are_hex(self, value, key):
        token = FieldEncryptor(key).encrypt(value)
        assert len(token) % 16 == 0 and len(token) > 0
        int(token, 16)


class TestHashProperties:
    @given(
        value=st.one_of(st.text(max_size=30), st.integers(), st.floats(allow_nan=False, allow_infinity=False)),
        key=KEYS,
    )
    @settings(max_examples=80, deadline=None)
    def test_keyed_hash_is_stable_and_non_negative(self, value, key):
        assert keyed_hash(value, key) == keyed_hash(value, key)
        assert keyed_hash(value, key) >= 0

    @given(value=st.text(max_size=30), n_bits=st.integers(min_value=1, max_value=256))
    @settings(max_examples=60, deadline=None)
    def test_one_way_bits_length_and_alphabet(self, value, n_bits):
        bits = one_way_bits(value, n_bits)
        assert len(bits) == n_bits
        assert set(bits) <= {0, 1}


class TestPRNGProperties:
    @given(seed=st.text(max_size=20), low=st.integers(-1000, 1000), span=st.integers(0, 500))
    @settings(max_examples=80, deadline=None)
    def test_randint_within_bounds(self, seed, low, span):
        rng = DeterministicPRNG(seed)
        high = low + span
        for _ in range(5):
            assert low <= rng.randint(low, high) <= high

    @given(seed=st.text(max_size=20), n=st.integers(1, 60), fraction=st.floats(0.0, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_subset_indices_properties(self, seed, n, fraction):
        subset = DeterministicPRNG(seed).subset_indices(n, fraction)
        assert len(subset) == int(round(n * fraction))
        assert len(set(subset)) == len(subset)
        assert all(0 <= index < n for index in subset)

    @given(seed=st.text(max_size=20), items=st.lists(st.integers(), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_shuffle_preserves_multiset(self, seed, items):
        shuffled = list(items)
        DeterministicPRNG(seed).shuffle(shuffled)
        assert sorted(shuffled) == sorted(items)
