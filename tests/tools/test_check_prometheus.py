"""tools/check_prometheus.py — the exposition validator CI scrapes through.

Focus: the ``--require-label`` gate added for the pre-fork server's
host/pid-stamped scrapes — a family whose samples drop the stamp must fail,
an absent family must fail, and a malformed spec is a usage error.
"""

import importlib.util
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "check_prometheus",
    Path(__file__).resolve().parents[2] / "tools" / "check_prometheus.py",
)
check_prometheus = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_prometheus)


STAMPED = """\
# TYPE repro_server_info gauge
repro_server_info{host="box",pid="41"} 1
# TYPE repro_connections_total counter
repro_connections_total{host="box",pid="41"} 7
"""

UNSTAMPED = """\
# TYPE repro_server_info gauge
repro_server_info{host="box"} 1
repro_server_info{host="box",pid="42"} 1
"""


class TestRequireLabel:
    def test_stamped_scrape_passes(self):
        errors = check_prometheus.validate(
            STAMPED,
            require_labels=[("repro_server_info", "host"), ("repro_server_info", "pid")],
        )
        assert errors == []

    def test_sample_missing_the_label_fails(self):
        errors = check_prometheus.validate(
            UNSTAMPED, require_labels=[("repro_server_info", "pid")]
        )
        assert len(errors) == 1
        assert "lacks required label 'pid'" in errors[0]

    def test_absent_family_fails(self):
        errors = check_prometheus.validate(
            STAMPED, require_labels=[("repro_queue_depth", "host")]
        )
        assert errors == ["label-required metric family 'repro_queue_depth' is absent"]

    def test_histogram_samples_are_covered(self):
        text = (
            "# TYPE repro_latency_seconds histogram\n"
            'repro_latency_seconds_bucket{le="+Inf"} 3\n'
            "repro_latency_seconds_sum 0.5\n"
            "repro_latency_seconds_count 3\n"
        )
        errors = check_prometheus.validate(
            text, require_labels=[("repro_latency_seconds", "pid")]
        )
        assert len(errors) == 3  # bucket, sum and count samples all unstamped


class TestCli:
    def test_require_label_via_cli(self, tmp_path, capsys):
        path = tmp_path / "scrape.txt"
        path.write_text(STAMPED)
        assert (
            check_prometheus.main([str(path), "--require-label", "repro_server_info=pid"])
            == 0
        )
        path.write_text(UNSTAMPED)
        assert (
            check_prometheus.main([str(path), "--require-label", "repro_server_info=pid"])
            == 1
        )
        assert "lacks required label" in capsys.readouterr().err

    def test_malformed_spec_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "scrape.txt"
        path.write_text(STAMPED)
        assert check_prometheus.main([str(path), "--require-label", "nonsense"]) == 2
        assert "FAMILY=LABEL" in capsys.readouterr().err
