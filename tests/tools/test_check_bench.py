"""tools/check_bench.py — the CI perf gate's comparison logic.

The acceptance bar: the gate passes a result set equal to its baseline and
demonstrably fails a fabricated 2x-slower one, through both the library
functions and the CLI entry point (exit codes are what CI consumes).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench", Path(__file__).resolve().parents[2] / "tools" / "check_bench.py"
)
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


def result_doc(times: dict[str, float]) -> dict:
    """A minimal pytest-benchmark JSON document."""
    return {
        "benchmarks": [
            {"name": name, "stats": {"min": seconds}} for name, seconds in times.items()
        ]
    }


@pytest.fixture()
def files(tmp_path):
    """A baseline and a matching result file on disk; returns their paths."""
    times = {"test_protect": 0.5, "test_detect": 0.1}
    results = tmp_path / "results.json"
    results.write_text(json.dumps(result_doc(times)))
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(check_bench.updated_baseline(times, 0.30)))
    return results, baseline


class TestCheck:
    def test_equal_results_pass(self):
        times = {"a": 1.0, "b": 0.25}
        baseline = check_bench.updated_baseline(times, 0.30)
        failures, _ = check_bench.check(times, baseline)
        assert failures == []

    def test_within_tolerance_passes(self):
        baseline = check_bench.updated_baseline({"a": 1.0}, 0.30)
        failures, _ = check_bench.check({"a": 1.29}, baseline)
        assert failures == []

    def test_two_x_slower_fails(self):
        """The fabricated-regression bar from the PR acceptance criteria."""
        baseline = check_bench.updated_baseline({"a": 1.0, "b": 0.25}, 0.30)
        failures, _ = check_bench.check({"a": 2.0, "b": 0.25}, baseline)
        assert len(failures) == 1 and "a" in failures[0] and "REGRESSION" in failures[0]

    def test_faster_than_tolerance_is_note_not_failure(self):
        baseline = check_bench.updated_baseline({"a": 1.0}, 0.30)
        failures, notes = check_bench.check({"a": 0.5}, baseline)
        assert failures == []
        assert any("refreshing the baseline" in note for note in notes)

    def test_missing_baseline_entry_fails(self):
        baseline = check_bench.updated_baseline({"a": 1.0}, 0.30)
        failures, _ = check_bench.check({"a": 1.0, "brand_new": 1.0}, baseline)
        assert len(failures) == 1 and "brand_new" in failures[0]

    def test_baseline_entry_missing_from_run_is_skipped(self):
        baseline = check_bench.updated_baseline({"a": 1.0, "b": 1.0}, 0.30)
        failures, notes = check_bench.check({"a": 1.0}, baseline)
        assert failures == []
        assert any("b: in baseline but not in this run" in note for note in notes)

    def test_sub_millisecond_timers_are_never_gated(self):
        """No-op pedantic carriers (extra_info-only benchmarks) are noise."""
        baseline = check_bench.updated_baseline({"sentinel": 2e-06}, 0.30)
        failures, notes = check_bench.check({"sentinel": 2e-05}, baseline)  # 10x "slower"
        assert failures == []
        assert any("gate floor" in note for note in notes)

    def test_tolerance_from_baseline_file(self):
        baseline = check_bench.updated_baseline({"a": 1.0}, 0.10)
        failures, _ = check_bench.check({"a": 1.2}, baseline)
        assert len(failures) == 1  # 1.2x > the file's 1.10x bar


class TestCLI:
    def test_check_mode_exit_codes(self, files):
        results, baseline = files
        argv = [str(results), "--check", "--baseline", str(baseline)]
        assert check_bench.main(argv) == 0

        slow = json.loads(results.read_text())
        for bench in slow["benchmarks"]:
            bench["stats"]["min"] *= 2.0
        results.write_text(json.dumps(slow))
        assert check_bench.main(argv) == 1

    def test_update_mode_round_trips(self, files, tmp_path):
        results, _ = files
        fresh = tmp_path / "fresh-baseline.json"
        assert check_bench.main([str(results), "--update", "--baseline", str(fresh)]) == 0
        document = json.loads(fresh.read_text())
        assert document["tolerance"] == check_bench.DEFAULT_TOLERANCE
        assert document["entries"]["test_protect"]["min_seconds"] == 0.5
        assert check_bench.main([str(results), "--check", "--baseline", str(fresh)]) == 0

    def test_malformed_results_exit_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            check_bench.main([str(bad), "--check"])
        assert excinfo.value.code == 2  # operational, distinguishable from a regression

    def test_bench_size_mismatch_exit_2(self, files, monkeypatch):
        """A baseline taken at another REPRO_BENCH_SIZE must not be compared."""
        results, baseline = files
        document = json.loads(baseline.read_text())
        document["bench_size"] = 5000
        baseline.write_text(json.dumps(document))
        monkeypatch.setenv("REPRO_BENCH_SIZE", "2500")
        with pytest.raises(SystemExit) as excinfo:
            check_bench.main([str(results), "--check", "--baseline", str(baseline)])
        assert excinfo.value.code == 2
        # Unset env is equally untrustworthy: the benchmarks then ran at
        # their own default size, not the baseline's.
        monkeypatch.delenv("REPRO_BENCH_SIZE")
        with pytest.raises(SystemExit) as excinfo:
            check_bench.main([str(results), "--check", "--baseline", str(baseline)])
        assert excinfo.value.code == 2
        monkeypatch.setenv("REPRO_BENCH_SIZE", "5000")
        assert check_bench.main([str(results), "--check", "--baseline", str(baseline)]) == 0

    def test_update_records_env_bench_size(self, files, tmp_path, monkeypatch):
        results, _ = files
        fresh = tmp_path / "sized.json"
        monkeypatch.setenv("REPRO_BENCH_SIZE", "5000")
        check_bench.main([str(results), "--update", "--baseline", str(fresh)])
        assert json.loads(fresh.read_text())["bench_size"] == 5000

    def test_committed_baseline_matches_tool_shape(self):
        """The repo's own baseline parses and covers the gated suites."""
        baseline = json.loads(
            (Path(__file__).resolve().parents[2] / "benchmarks" / "baseline.json").read_text()
        )
        assert 0 < float(baseline["tolerance"]) < 1
        assert baseline["bench_size"] == 5000  # the size the perf-gate job measures at
        entries = baseline["entries"]
        assert "test_streaming_protect_throughput" in entries
        assert "test_protect_thread_vs_process_runner" in entries
        for entry in entries.values():
            assert float(entry["min_seconds"]) > 0
