"""Tests for the complete binning agent (Figure 8)."""

import pytest

from repro.binning.binner import BinningAgent
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.crypto.cipher import FieldEncryptor
from repro.dht.node import Interval
from repro.metrics.usage_metrics import UsageMetrics


class TestBinningResult:
    def test_identifying_column_is_encrypted_one_to_one(self, binned_small, medium_table):
        binned = binned_small.binned
        originals = medium_table.column_values("ssn")
        encrypted = binned.table.column_values("ssn")
        assert len(encrypted) == len(originals)
        assert set(encrypted).isdisjoint(set(originals))
        # One-to-one: distinct plaintexts stay distinct.
        assert len(set(encrypted)) == len(set(originals))
        # The owner's key recovers the plaintext.
        encryptor = FieldEncryptor("test-encryption-key")
        assert encryptor.decrypt(encrypted[0]) == originals[0]

    def test_quasi_columns_hold_generalized_values(self, binned_small):
        binned = binned_small.binned
        for column in binned.quasi_columns:
            tree = binned.tree(column)
            allowed = {tree.node(name).value for name in binned.ultimate_nodes[column]}
            assert set(binned.table.column_values(column)) <= allowed

    def test_age_values_become_intervals(self, binned_small):
        values = binned_small.binned.table.column_values("age")
        assert all(isinstance(value, Interval) for value in values)

    def test_every_mono_bin_meets_k(self, binned_small):
        binned = binned_small.binned
        for column in binned.quasi_columns:
            sizes = binned.bin_sizes(column)
            assert all(size >= binned.k for size in sizes.values()), column

    def test_minimal_nodes_below_maximal(self, binned_small):
        binned = binned_small.binned
        for column in binned.quasi_columns:
            tree = binned.tree(column)
            maximal = set(binned.maximal_node_objects(column))
            for node in binned.ultimate_node_objects(column):
                assert any(anchor is node or anchor.is_ancestor_of(node) for anchor in maximal)

    def test_information_loss_bookkeeping(self, binned_small):
        assert set(binned_small.information_losses) == set(binned_small.binned.quasi_columns)
        assert 0.0 <= binned_small.normalized_information_loss <= 1.0
        assert binned_small.mono_normalized_information_loss <= binned_small.normalized_information_loss + 1e-9

    def test_row_count_preserved(self, binned_small, medium_table):
        assert len(binned_small.binned.table) == len(medium_table)

    def test_other_metadata(self, binned_small):
        binned = binned_small.binned
        assert binned.identifying_columns == ("ssn",)
        assert set(binned.quasi_columns) == {"age", "zip_code", "doctor", "symptom", "prescription"}
        assert binned.k == 10


class TestBinnedTableHelpers:
    def test_ident_value_single_column(self, binned_small):
        binned = binned_small.binned
        row = binned.table[0]
        assert binned.ident_value(row) == row["ssn"]

    def test_generalization_accessors(self, binned_small):
        binned = binned_small.binned
        gen = binned.ultimate_generalization("symptom")
        assert gen.attribute == "symptom"
        multi = binned.ultimate_generalizations()
        assert set(multi.columns) == set(binned.quasi_columns)
        assert binned.maximal_generalization("symptom").attribute == "symptom"

    def test_unknown_column_raises(self, binned_small):
        with pytest.raises(KeyError):
            binned_small.binned.tree("nonexistent")

    def test_copy_isolates_rows(self, binned_small):
        binned = binned_small.binned
        clone = binned.copy()
        clone.table[0]["symptom"] = "tampered"
        assert binned.table[0]["symptom"] != "tampered"

    def test_joint_bin_sizes_cover_table(self, binned_small):
        sizes = binned_small.binned.joint_bin_sizes()
        assert sum(sizes.values()) == len(binned_small.binned.table)


class TestBinningAgentModes:
    def test_joint_mode_enforces_joint_k(self, trees, small_table):
        metrics = UsageMetrics.uniform_depth(trees, 0)
        agent = BinningAgent(
            trees, metrics, KAnonymitySpec(k=5, mode=EnforcementMode.JOINT), "key", enumeration_budget=64
        )
        result = agent.bin(small_table)
        assert result.satisfied
        sizes = result.binned.joint_bin_sizes()
        assert all(size >= 5 for size in sizes.values())

    def test_mono_mode_does_not_necessarily_satisfy_joint(self, binned_small):
        sizes = binned_small.binned.joint_bin_sizes()
        assert any(size < binned_small.binned.k for size in sizes.values())

    def test_epsilon_margin_applied(self, trees, small_table):
        metrics = UsageMetrics.uniform_depth(trees, 1)
        agent = BinningAgent(
            trees, metrics, KAnonymitySpec(k=5, epsilon=5, mode=EnforcementMode.MONO), "key"
        )
        result = agent.bin(small_table)
        for column in result.binned.quasi_columns:
            assert all(size >= 10 for size in result.binned.bin_sizes(column).values())

    def test_missing_tree_raises(self, trees, small_table):
        partial = {"age": trees["age"]}
        agent = BinningAgent(partial, UsageMetrics(), KAnonymitySpec(k=5, mode=EnforcementMode.MONO), "key")
        with pytest.raises(KeyError):
            agent.bin(small_table)

    def test_explicit_column_subset(self, trees, small_table):
        spec = KAnonymitySpec(k=5, columns=("age", "symptom"), mode=EnforcementMode.MONO)
        agent = BinningAgent(trees, UsageMetrics.uniform_depth(trees, 1), spec, "key")
        result = agent.bin(small_table)
        assert set(result.binned.quasi_columns) == {"age", "symptom"}
        # Untouched quasi columns keep their raw values.
        assert set(result.binned.table.column_values("doctor")) == set(small_table.column_values("doctor"))

    def test_decrypt_identifier_roundtrip(self, trees, small_table):
        agent = BinningAgent(
            trees, UsageMetrics.uniform_depth(trees, 1), KAnonymitySpec(k=5, mode=EnforcementMode.MONO), "key"
        )
        result = agent.bin(small_table)
        token = result.binned.table[0]["ssn"]
        assert agent.decrypt_identifier(token) == small_table[0]["ssn"]

    def test_original_table_untouched(self, trees, small_table):
        before = small_table.copy()
        agent = BinningAgent(
            trees, UsageMetrics.uniform_depth(trees, 1), KAnonymitySpec(k=5, mode=EnforcementMode.MONO), "key"
        )
        agent.bin(small_table)
        assert small_table == before
