"""Tests for the k-anonymity specification, bins and the column index."""

import pytest

from repro.binning.generalization import Generalization, MultiColumnGeneralization
from repro.binning.kanonymity import (
    ColumnIndex,
    EnforcementMode,
    KAnonymitySpec,
    bin_sizes,
    is_k_anonymous,
)
from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema
from repro.relational.table import Table


@pytest.fixture()
def ward_table():
    schema = TableSchema(
        (
            Column("id", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL),
            Column("ward", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL),
            Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC),
        )
    )
    rows = []
    wards = ["Cardiology"] * 6 + ["Neurology"] * 3 + ["Orthopedics"] * 4 + ["Trauma"] * 2
    ages = [12, 25, 37, 44, 55, 63, 18, 29, 71, 33, 47, 52, 66, 8, 59]
    for index, (ward, age) in enumerate(zip(wards, ages)):
        rows.append({"id": f"p{index:02d}", "ward": ward, "age": age})
    return Table(schema, rows)


@pytest.fixture()
def ward_trees(tiny_tree, age8_tree):
    return {"ward": tiny_tree, "age": age8_tree}


class TestKAnonymitySpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            KAnonymitySpec(k=0)
        with pytest.raises(ValueError):
            KAnonymitySpec(k=5, epsilon=-1)

    def test_effective_k(self):
        assert KAnonymitySpec(k=10).effective_k == 10
        assert KAnonymitySpec(k=10, epsilon=3).effective_k == 13
        assert KAnonymitySpec(k=10).with_epsilon(2).effective_k == 12

    def test_default_mode_is_joint(self):
        assert KAnonymitySpec(k=5).mode is EnforcementMode.JOINT

    def test_resolve_columns_defaults_to_quasi_identifiers(self, ward_table):
        assert KAnonymitySpec(k=5).resolve_columns(ward_table) == ["ward", "age"]

    def test_resolve_columns_explicit(self, ward_table):
        assert KAnonymitySpec(k=5, columns=("ward",)).resolve_columns(ward_table) == ["ward"]
        with pytest.raises(KeyError):
            KAnonymitySpec(k=5, columns=("missing",)).resolve_columns(ward_table)


class TestIsKAnonymous:
    def test_basic(self):
        assert is_k_anonymous({"a": 5, "b": 7}, 5)
        assert not is_k_anonymous({"a": 5, "b": 4}, 5)
        assert is_k_anonymous({}, 5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            is_k_anonymous({"a": 1}, 0)

    def test_bin_sizes_delegates_to_group_by(self, ward_table):
        sizes = bin_sizes(ward_table, ["ward"])
        assert sizes[("Cardiology",)] == 6
        assert sum(sizes.values()) == len(ward_table)


class TestColumnIndex:
    def test_row_leaves_and_counts(self, ward_table, ward_trees):
        index = ColumnIndex(ward_table, ward_trees, ["ward", "age"])
        assert index.n_rows == len(ward_table)
        assert index.columns == ["ward", "age"]
        leaves = index.row_leaves("ward")
        assert len(leaves) == len(ward_table)
        assert leaves[0].name == "Cardiology"
        counts = index.leaf_counts("ward")
        assert counts[ward_trees["ward"].node("Cardiology")] == 6
        assert sum(counts.values()) == len(ward_table)

    def test_counts_by_column_returns_copies(self, ward_table, ward_trees):
        index = ColumnIndex(ward_table, ward_trees, ["ward"])
        counts = index.counts_by_column()["ward"]
        counts.clear()
        assert sum(index.leaf_counts("ward").values()) == len(ward_table)

    def test_mono_bin_sizes_identity(self, ward_table, ward_trees):
        index = ColumnIndex(ward_table, ward_trees, ["ward", "age"])
        identity = Generalization.identity(ward_trees["ward"])
        sizes = index.mono_bin_sizes("ward", identity)
        assert sizes[ward_trees["ward"].node("Trauma")] == 2

    def test_mono_bin_sizes_generalized(self, ward_table, ward_trees):
        index = ColumnIndex(ward_table, ward_trees, ["ward", "age"])
        coarse = Generalization.from_node_names(ward_trees["ward"], ["Medicine", "Surgery"])
        sizes = {node.name: count for node, count in index.mono_bin_sizes("ward", coarse).items()}
        assert sizes == {"Medicine": 9, "Surgery": 6}

    def test_satisfies_mono(self, ward_table, ward_trees):
        index = ColumnIndex(ward_table, ward_trees, ["ward", "age"])
        identity = Generalization.identity(ward_trees["ward"])
        coarse = Generalization.from_node_names(ward_trees["ward"], ["Medicine", "Surgery"])
        assert index.satisfies_mono("ward", identity, 2)
        assert not index.satisfies_mono("ward", identity, 3)
        assert index.satisfies_mono("ward", coarse, 6)

    def test_joint_bin_sizes_and_violations(self, ward_table, ward_trees):
        index = ColumnIndex(ward_table, ward_trees, ["ward", "age"])
        multi = MultiColumnGeneralization(
            {
                "ward": Generalization.from_node_names(ward_trees["ward"], ["Medicine", "Surgery"]),
                "age": Generalization(ward_trees["age"], list(ward_trees["age"].root.children)),
            }
        )
        sizes = index.joint_bin_sizes(multi)
        assert sum(sizes.values()) == len(ward_table)
        k = 4
        violations = index.joint_violations(multi, k)
        undersized = sum(size for size in sizes.values() if size < k)
        assert len(violations) == undersized
        assert index.satisfies_joint(multi, 1)
        assert not index.satisfies_joint(multi, 100)

    def test_joint_requires_covered_columns(self, ward_table, ward_trees, role_tree):
        index = ColumnIndex(ward_table, ward_trees, ["ward", "age"])
        unrelated = MultiColumnGeneralization({"role": Generalization.identity(role_tree)})
        with pytest.raises(ValueError):
            index.joint_bin_sizes(unrelated)
