"""Tests for mono-attribute downward binning (Figure 5)."""

import pytest

from repro.binning.errors import NotBinnableError
from repro.binning.mono import gen_min_nodes, num_tuples_under
from repro.metrics.information_loss import leaf_counts
from repro.metrics.usage_metrics import frontier_at_depth


def _role_counts(role_tree, spec):
    """Build leaf counts from a {leaf name: count} mapping."""
    values = []
    for name, count in spec.items():
        values.extend([name] * count)
    return leaf_counts(role_tree, values)


class TestNumTuplesUnder:
    def test_counts_subtree(self, role_tree):
        counts = _role_counts(role_tree, {"Nurse": 3, "Surgeon": 2, "Clerk": 5})
        assert num_tuples_under(role_tree.node("Paramedic"), counts) == 3
        assert num_tuples_under(role_tree.node("Medical staff"), counts) == 5
        assert num_tuples_under(role_tree.root, counts) == 10
        assert num_tuples_under(role_tree.node("Director"), counts) == 0


class TestGenMinNodes:
    def test_no_generalization_needed(self, role_tree):
        counts = _role_counts(role_tree, {leaf.name: 5 for leaf in role_tree.leaves()})
        minimal = gen_min_nodes(role_tree, [role_tree.root], counts, k=5)
        assert set(minimal) == set(role_tree.leaves())

    def test_partial_generalization(self, role_tree):
        # Doctors are plentiful individually; paramedics only in aggregate.
        counts = _role_counts(
            role_tree,
            {
                "Surgeon": 5,
                "Physician": 5,
                "Radiologist": 5,
                "Pharmacist": 2,
                "Nurse": 2,
                "Consultant": 2,
                "Clerk": 5,
                "Receptionist": 5,
                "Administrator": 5,
                "Director": 5,
            },
        )
        minimal = gen_min_nodes(role_tree, [role_tree.root], counts, k=5)
        names = {node.name for node in minimal}
        assert "Paramedic" in names          # merged: each child has only 2
        assert "Surgeon" in names            # kept: satisfies k on its own
        assert "Clerk" in names
        assert role_tree.is_valid_cut(minimal)

    def test_simple_rationale_stops_when_any_child_fails(self, role_tree):
        # One administrative leaf is rare -> the whole Clerical subtree stays merged.
        counts = _role_counts(
            role_tree,
            {"Clerk": 50, "Receptionist": 1, "Administrator": 10, "Director": 10,
             "Surgeon": 10, "Physician": 10, "Radiologist": 10,
             "Pharmacist": 10, "Nurse": 10, "Consultant": 10},
        )
        minimal = gen_min_nodes(role_tree, [role_tree.root], counts, k=5)
        names = {node.name for node in minimal}
        assert "Clerical" in names
        assert "Clerk" not in names

    def test_respects_maximal_frontier(self, role_tree):
        counts = _role_counts(role_tree, {leaf.name: 10 for leaf in role_tree.leaves()})
        frontier = frontier_at_depth(role_tree, 1)
        minimal = gen_min_nodes(role_tree, frontier, counts, k=10)
        assert set(minimal) == set(role_tree.leaves())
        # Starting from a frontier, the result never rises above it.
        for node in gen_min_nodes(role_tree, frontier, counts, k=40):
            assert any(anchor is node or anchor.is_ancestor_of(node) for anchor in frontier)

    def test_empty_maximal_node_is_kept(self, role_tree):
        counts = _role_counts(role_tree, {"Surgeon": 10, "Physician": 10, "Radiologist": 10,
                                          "Pharmacist": 10, "Nurse": 10, "Consultant": 10})
        # No administrative staff at all: that side of the frontier is kept as-is.
        frontier = frontier_at_depth(role_tree, 1)
        minimal = gen_min_nodes(role_tree, frontier, counts, k=5)
        assert role_tree.node("Administrative staff") in minimal
        assert role_tree.is_valid_cut(minimal)

    def test_not_binnable_raises(self, role_tree):
        counts = _role_counts(role_tree, {"Nurse": 3, "Clerk": 3})
        frontier = frontier_at_depth(role_tree, 1)  # each side has only 3 < k
        with pytest.raises(NotBinnableError) as excinfo:
            gen_min_nodes(role_tree, frontier, counts, k=5)
        assert excinfo.value.column == "role"
        assert excinfo.value.k == 5

    def test_whole_table_smaller_than_k(self, role_tree):
        counts = _role_counts(role_tree, {"Nurse": 3})
        with pytest.raises(NotBinnableError):
            gen_min_nodes(role_tree, [role_tree.root], counts, k=5)

    def test_numeric_tree(self, age8_tree):
        counts = leaf_counts(age8_tree, [5, 7, 9, 15, 25, 27, 35, 45, 55, 65, 75, 78])
        minimal = gen_min_nodes(age8_tree, [age8_tree.root], counts, k=3)
        assert age8_tree.is_valid_cut(minimal)
        sizes = {}
        for node in minimal:
            sizes[node] = sum(counts.get(leaf, 0) for leaf in node.leaves())
        assert all(size >= 3 or size == 0 for size in sizes.values())

    def test_every_minimal_bin_meets_k(self, role_tree):
        counts = _role_counts(role_tree, {leaf.name: i + 1 for i, leaf in enumerate(role_tree.leaves())})
        for k in (2, 4, 8, 15):
            try:
                minimal = gen_min_nodes(role_tree, [role_tree.root], counts, k=k)
            except NotBinnableError:
                continue
            for node in minimal:
                covered = num_tuples_under(node, counts)
                assert covered == 0 or covered >= k

    def test_validation(self, role_tree):
        counts = _role_counts(role_tree, {"Nurse": 10})
        with pytest.raises(ValueError):
            gen_min_nodes(role_tree, [role_tree.root], counts, k=0)
        with pytest.raises(ValueError):
            gen_min_nodes(role_tree, [role_tree.node("Doctor")], counts, k=2)
