"""Tests for multi-attribute binning (Figure 7)."""

import pytest

from repro.binning.errors import NotBinnableError
from repro.binning.generalization import Generalization
from repro.binning.kanonymity import ColumnIndex
from repro.binning.mono import gen_min_nodes
from repro.binning.multi import (
    allowable_generalizations,
    count_allowable_combinations,
    gen_ultimate_nodes,
)
from repro.crypto.prng import DeterministicPRNG
from repro.metrics.usage_metrics import frontier_at_depth
from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema
from repro.relational.table import Table


@pytest.fixture()
def correlated_table(tiny_tree, age8_tree):
    """A table whose ward/age combination is intentionally sparse.

    Each ward individually and each age band individually holds plenty of
    rows, but several (ward, age) combinations are rare — exactly the paper's
    motivation for the multi-attribute step.
    """
    schema = TableSchema(
        (
            Column("id", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL),
            Column("ward", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL),
            Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC),
        )
    )
    rng = DeterministicPRNG("correlated-table")
    rows = []
    wards = [leaf.value for leaf in tiny_tree.leaves()]
    for index in range(300):
        ward = wards[index % len(wards)]
        # Surgery patients skew old, medicine patients skew young -> sparse
        # combinations in the off-diagonal cells.
        if ward in ("Orthopedics", "Trauma"):
            age = rng.randint(50, 79)
        else:
            age = rng.randint(0, 49)
        if index % 37 == 0:  # a few contrarian rows create the rare combos
            age = 79 - age
        rows.append({"id": f"p{index:03d}", "ward": ward, "age": age})
    return Table(schema, rows)


@pytest.fixture()
def frontiers(correlated_table, tiny_tree, age8_tree):
    trees = {"ward": tiny_tree, "age": age8_tree}
    index = ColumnIndex(correlated_table, trees, ["ward", "age"])
    k = 8
    maximal = {"ward": [tiny_tree.root], "age": [age8_tree.root]}
    minimal = {
        column: gen_min_nodes(trees[column], maximal[column], index.leaf_counts(column), k)
        for column in trees
    }
    return trees, index, minimal, maximal, k


class TestAllowableGeneralizations:
    def test_between_frontiers(self, role_tree):
        minimal = role_tree.leaves()
        maximal = frontier_at_depth(role_tree, 1)
        candidates = allowable_generalizations(role_tree, minimal, maximal)
        assert all(isinstance(candidate, Generalization) for candidate in candidates)
        # Every candidate lies between the frontiers.
        minimal_gen = Generalization(role_tree, minimal)
        maximal_gen = Generalization(role_tree, maximal)
        for candidate in candidates:
            assert minimal_gen.is_refinement_of(candidate)
            assert candidate.is_refinement_of(maximal_gen)

    def test_count_matches(self, role_tree, age8_tree):
        trees = {"role": role_tree, "age": age8_tree}
        minimal = {"role": role_tree.leaves(), "age": age8_tree.leaves()}
        maximal = {"role": [role_tree.root], "age": [age8_tree.root]}
        per_column = {
            column: len(allowable_generalizations(trees[column], minimal[column], maximal[column]))
            for column in trees
        }
        assert count_allowable_combinations(trees, minimal, maximal) == (
            per_column["role"] * per_column["age"]
        )

    def test_limit_propagates(self, role_tree):
        with pytest.raises(OverflowError):
            allowable_generalizations(role_tree, role_tree.leaves(), [role_tree.root], limit=3)


class TestGenUltimateNodes:
    def test_exact_search_satisfies_joint_k(self, frontiers):
        trees, index, minimal, maximal, k = frontiers
        outcome = gen_ultimate_nodes(index, trees, minimal, maximal, k, enumeration_budget=100_000)
        assert not outcome.used_fallback
        assert outcome.satisfied
        assert index.satisfies_joint(outcome.generalization, k)

    def test_greedy_search_satisfies_joint_k(self, frontiers):
        trees, index, minimal, maximal, k = frontiers
        outcome = gen_ultimate_nodes(index, trees, minimal, maximal, k, enumeration_budget=1)
        assert outcome.used_fallback
        assert outcome.satisfied
        assert index.satisfies_joint(outcome.generalization, k)

    def test_exact_picks_minimal_specificity_loss(self, frontiers):
        trees, index, minimal, maximal, k = frontiers
        exact = gen_ultimate_nodes(index, trees, minimal, maximal, k, enumeration_budget=100_000)
        greedy = gen_ultimate_nodes(index, trees, minimal, maximal, k, enumeration_budget=1)
        assert (
            exact.generalization.total_specificity_loss()
            <= greedy.generalization.total_specificity_loss() + 1e-9
        )

    def test_ultimate_lies_between_frontiers(self, frontiers):
        trees, index, minimal, maximal, k = frontiers
        outcome = gen_ultimate_nodes(index, trees, minimal, maximal, k)
        for column in trees:
            ultimate = outcome.generalization[column]
            assert Generalization(trees[column], minimal[column]).is_refinement_of(ultimate)
            assert ultimate.is_refinement_of(Generalization(trees[column], maximal[column]))

    def test_mono_satisfying_input_stays_put_when_already_joint(self, role_tree, age8_tree):
        # If the minimal frontier already satisfies joint k-anonymity, it is
        # chosen unchanged (it has the least specificity loss).
        schema = TableSchema(
            (
                Column("id", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL),
                Column("role", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL),
                Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC),
            )
        )
        rows = []
        for index in range(120):
            rows.append({"id": str(index), "role": "Nurse" if index % 2 else "Clerk", "age": 20 + (index % 2) * 40})
        table = Table(schema, rows)
        trees = {"role": role_tree, "age": age8_tree}
        index_obj = ColumnIndex(table, trees, ["role", "age"])
        minimal = {
            column: gen_min_nodes(trees[column], [trees[column].root], index_obj.leaf_counts(column), 10)
            for column in trees
        }
        maximal = {column: [trees[column].root] for column in trees}
        outcome = gen_ultimate_nodes(index_obj, trees, minimal, maximal, 10)
        assert outcome.satisfied
        assert outcome.generalization.node_names() == {
            column: Generalization(trees[column], minimal[column]).node_names for column in trees
        }

    def test_not_binnable_raises(self, tiny_tree, age8_tree):
        schema = TableSchema(
            (
                Column("id", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL),
                Column("ward", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL),
            )
        )
        table = Table(schema, [{"id": "1", "ward": "Trauma"}, {"id": "2", "ward": "Cardiology"}])
        trees = {"ward": tiny_tree}
        index = ColumnIndex(table, trees, ["ward"])
        minimal = {"ward": tiny_tree.leaves()}
        maximal = {"ward": [tiny_tree.root]}
        with pytest.raises(NotBinnableError):
            gen_ultimate_nodes(index, trees, minimal, maximal, k=5)

    def test_missing_frontier_rejected(self, frontiers):
        trees, index, minimal, maximal, k = frontiers
        with pytest.raises(KeyError):
            gen_ultimate_nodes(index, trees, {"ward": minimal["ward"]}, maximal, k)

    def test_invalid_k_rejected(self, frontiers):
        trees, index, minimal, maximal, _ = frontiers
        with pytest.raises(ValueError):
            gen_ultimate_nodes(index, trees, minimal, maximal, k=0)
