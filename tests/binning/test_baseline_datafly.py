"""Tests for the upward (Datafly-style) binning baseline."""

import pytest

from repro.binning.baseline_datafly import DataflyBinner
from repro.binning.binner import BinningAgent
from repro.binning.errors import NotBinnableError
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.metrics.usage_metrics import UsageMetrics
from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema
from repro.relational.table import Table


class TestDataflyBinner:
    def test_mono_result_is_k_anonymous(self, trees, small_table):
        binner = DataflyBinner(trees, KAnonymitySpec(k=10, mode=EnforcementMode.MONO))
        outcome = binner.bin(small_table)
        assert outcome.satisfied
        applied = binner.apply(small_table, outcome.generalization)
        for column in outcome.generalization.columns:
            assert all(size >= 10 for size in applied.value_counts(column).values())

    def test_joint_result_is_k_anonymous(self, trees, small_table):
        binner = DataflyBinner(trees, KAnonymitySpec(k=5, mode=EnforcementMode.JOINT))
        outcome = binner.bin(small_table)
        assert outcome.satisfied
        applied = binner.apply(small_table, outcome.generalization)
        sizes = applied.group_by_count(list(outcome.generalization.columns))
        assert all(size >= 5 for size in sizes.values())

    def test_full_domain_cuts_only(self, trees, small_table):
        """Datafly generalizes whole columns level by level (uniform depth)."""
        binner = DataflyBinner(trees, KAnonymitySpec(k=10, mode=EnforcementMode.MONO))
        outcome = binner.bin(small_table)
        for column, generalization in outcome.generalization.items():
            depths = {node.depth() for node in generalization.nodes if not node.is_leaf}
            # All non-leaf cut nodes sit at the same depth (full-domain recoding).
            assert len(depths) <= 1

    def test_loses_more_information_than_downward_binning(self, trees, depth1_metrics, small_table):
        spec = KAnonymitySpec(k=10, mode=EnforcementMode.MONO)
        downward = BinningAgent(trees, depth1_metrics, spec, "key").bin(small_table)
        upward = DataflyBinner(trees, spec).bin(small_table)
        assert upward.normalized_information_loss >= downward.normalized_information_loss

    def test_steps_counted(self, trees, small_table):
        outcome = DataflyBinner(trees, KAnonymitySpec(k=10, mode=EnforcementMode.MONO)).bin(small_table)
        assert outcome.steps > 0

    def test_tiny_table_not_binnable(self, trees):
        schema = TableSchema(
            (
                Column("ssn", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL),
                Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC),
            )
        )
        table = Table(schema, [{"ssn": "1", "age": 30}, {"ssn": "2", "age": 40}])
        binner = DataflyBinner({"age": trees["age"]}, KAnonymitySpec(k=5, mode=EnforcementMode.MONO))
        with pytest.raises(NotBinnableError):
            binner.bin(table)

    def test_missing_tree_raises(self, trees, small_table):
        binner = DataflyBinner({"age": trees["age"]}, KAnonymitySpec(k=5, mode=EnforcementMode.MONO))
        with pytest.raises(KeyError):
            binner.bin(small_table)
