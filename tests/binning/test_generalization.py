"""Tests for Generalization and MultiColumnGeneralization."""

import pytest

from repro.binning.generalization import Generalization, MultiColumnGeneralization
from repro.dht.node import Interval
from repro.metrics.information_loss import leaf_counts


class TestGeneralization:
    def test_identity_and_root(self, role_tree):
        identity = Generalization.identity(role_tree)
        root = Generalization.to_root(role_tree)
        assert len(identity) == len(role_tree.leaves())
        assert len(root) == 1
        assert identity.generalize("Nurse") == "Nurse"
        assert root.generalize("Nurse") == "Person"

    def test_invalid_cut_rejected(self, role_tree):
        with pytest.raises(ValueError):
            Generalization(role_tree, [role_tree.node("Doctor")])
        with pytest.raises(ValueError):
            Generalization(role_tree, [role_tree.root, role_tree.node("Doctor")])

    def test_from_node_names(self, role_tree):
        gen = Generalization.from_node_names(role_tree, ["Medical staff", "Administrative staff"])
        assert gen.generalize("Nurse") == "Medical staff"
        assert gen.generalize("Clerk") == "Administrative staff"
        assert gen.node_names == ("Administrative staff", "Medical staff")

    def test_node_for_raw_and_leaf(self, role_tree):
        gen = Generalization.from_node_names(role_tree, ["Medical staff", "Administrative staff"])
        assert gen.node_for_raw("Surgeon").name == "Medical staff"
        assert gen.node_for_leaf(role_tree.node("Clerk")).name == "Administrative staff"
        with pytest.raises(ValueError):
            gen.node_for_leaf(role_tree.node("Doctor"))  # not a leaf
        with pytest.raises(ValueError):
            gen.node_for_raw("unknown")

    def test_numeric_generalization(self, age8_tree):
        cut = [node for node in age8_tree.root.children]
        gen = Generalization(age8_tree, cut)
        assert gen.generalize(5) == Interval(0, 40)
        assert gen.generalize(79) == Interval(40, 80)

    def test_deduplicates_nodes(self, role_tree):
        cut = [role_tree.node("Medical staff"), role_tree.node("Medical staff"), role_tree.node("Administrative staff")]
        assert len(Generalization(role_tree, cut)) == 2

    def test_refinement_order(self, role_tree):
        fine = Generalization.identity(role_tree)
        mid = Generalization.from_node_names(role_tree, ["Medical staff", "Administrative staff"])
        coarse = Generalization.to_root(role_tree)
        assert fine.is_refinement_of(mid)
        assert mid.is_refinement_of(coarse)
        assert fine.is_refinement_of(coarse)
        assert not coarse.is_refinement_of(fine)
        assert mid.is_refinement_of(mid)

    def test_refinement_requires_same_tree(self, role_tree, tiny_tree):
        with pytest.raises(ValueError):
            Generalization.identity(role_tree).is_refinement_of(Generalization.identity(tiny_tree))

    def test_equality_and_hash(self, role_tree):
        a = Generalization.from_node_names(role_tree, ["Medical staff", "Administrative staff"])
        b = Generalization.from_node_names(role_tree, ["Administrative staff", "Medical staff"])
        c = Generalization.to_root(role_tree)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a generalization"

    def test_losses(self, role_tree):
        gen = Generalization.from_node_names(role_tree, ["Medical staff", "Administrative staff"])
        counts = leaf_counts(role_tree, ["Nurse", "Clerk"])
        assert gen.specificity_loss() == pytest.approx(0.8)
        assert 0.0 < gen.information_loss(counts) < 1.0


class TestMultiColumnGeneralization:
    def _multi(self, role_tree, age8_tree):
        return MultiColumnGeneralization(
            {
                "role": Generalization.from_node_names(role_tree, ["Medical staff", "Administrative staff"]),
                "age": Generalization(age8_tree, list(age8_tree.root.children)),
            }
        )

    def test_lookup_and_iteration(self, role_tree, age8_tree):
        multi = self._multi(role_tree, age8_tree)
        assert set(multi.columns) == {"role", "age"}
        assert "role" in multi and "missing" not in multi
        assert multi["role"].attribute == "role"
        with pytest.raises(KeyError):
            multi["missing"]
        assert dict(multi.items())["age"].attribute == "age"

    def test_generalize_row(self, role_tree, age8_tree):
        multi = self._multi(role_tree, age8_tree)
        generalized = multi.generalize_row({"role": "Nurse", "age": 33, "other": "x"})
        assert generalized == {"role": "Medical staff", "age": Interval(0, 40)}

    def test_node_names_serialisation(self, role_tree, age8_tree):
        names = self._multi(role_tree, age8_tree).node_names()
        assert set(names) == {"role", "age"}
        assert "Medical staff" in names["role"]

    def test_total_specificity_loss(self, role_tree, age8_tree):
        multi = self._multi(role_tree, age8_tree)
        losses = multi.specificity_losses()
        assert multi.total_specificity_loss() == pytest.approx(sum(losses.values()))

    def test_with_replaced(self, role_tree, age8_tree):
        multi = self._multi(role_tree, age8_tree)
        replaced = multi.with_replaced("role", Generalization.to_root(role_tree))
        assert replaced["role"].generalize("Nurse") == "Person"
        assert multi["role"].generalize("Nurse") == "Medical staff"
        with pytest.raises(KeyError):
            multi.with_replaced("missing", Generalization.to_root(role_tree))

    def test_identity_constructor(self, role_tree, age8_tree):
        multi = MultiColumnGeneralization.identity({"role": role_tree, "age": age8_tree}, ["role", "age"])
        assert multi.total_specificity_loss() == 0.0

    def test_mismatched_column_name_rejected(self, role_tree):
        with pytest.raises(ValueError):
            MultiColumnGeneralization({"age": Generalization.identity(role_tree)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiColumnGeneralization({})
