"""Tests for the concrete medical ontologies."""

import pytest

from repro.dht.node import Interval
from repro.ontology.age import age_tree
from repro.ontology.drugs import prescription_tree
from repro.ontology.geography import zip_code_tree, zip_leaves
from repro.ontology.icd9 import symptom_tree
from repro.ontology.practitioners import doctor_tree
from repro.ontology.registry import OntologyRegistry, roles_tree, standard_ontology


class TestAgeTree:
    def test_default_shape(self):
        tree = age_tree()
        assert tree.is_numeric
        assert tree.root.value == Interval(0, 150)
        assert len(tree.leaves()) == 30

    def test_figure3_width(self):
        tree = age_tree(leaf_width=25)
        assert len(tree.leaves()) == 6

    def test_rejects_non_dividing_width(self):
        with pytest.raises(ValueError):
            age_tree(leaf_width=7)
        with pytest.raises(ValueError):
            age_tree(leaf_width=0)


class TestCategoricalOntologies:
    @pytest.mark.parametrize(
        "factory, attribute, min_leaves, height",
        [
            (symptom_tree, "symptom", 100, 3),
            (prescription_tree, "prescription", 80, 3),
            (doctor_tree, "doctor", 50, 3),
            (zip_code_tree, "zip_code", 100, 4),
        ],
    )
    def test_shape(self, factory, attribute, min_leaves, height):
        tree = factory()
        assert tree.attribute == attribute
        assert len(tree.leaves()) >= min_leaves
        assert tree.height == height
        assert not tree.is_numeric

    def test_zip_leaves_are_five_digits(self):
        assert all(len(leaf) == 5 and leaf.isdigit() for leaf in zip_leaves())

    def test_zip_leaves_match_tree(self):
        tree = zip_code_tree()
        assert {leaf.value for leaf in tree.leaves()} == set(zip_leaves())

    def test_symptom_chapters_have_multiple_categories(self):
        tree = symptom_tree()
        for chapter in tree.children(tree.root):
            assert len(tree.children(chapter)) >= 2

    def test_every_node_reachable_as_value(self):
        tree = doctor_tree()
        for node in tree.nodes:
            assert tree.value_to_node(node.value) is not None


class TestRegistry:
    def test_standard_ontology_covers_schema(self):
        registry = standard_ontology()
        assert set(registry.columns) == {"age", "zip_code", "doctor", "symptom", "prescription"}
        assert len(registry) == 5
        for column in registry:
            assert registry[column].attribute == column

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            standard_ontology()["ssn"]

    def test_registry_rejects_mismatched_attribute(self):
        with pytest.raises(ValueError):
            OntologyRegistry({"age": symptom_tree()})

    def test_age_leaf_width_parameter(self):
        registry = standard_ontology(age_leaf_width=25)
        assert len(registry["age"].leaves()) == 6

    def test_roles_tree_matches_figure1(self):
        tree = roles_tree()
        assert tree.root.name == "Person"
        assert {child.name for child in tree.children(tree.root)} == {
            "Medical staff",
            "Administrative staff",
        }
        assert {child.name for child in tree.children(tree.node("Paramedic"))} == {
            "Pharmacist",
            "Nurse",
            "Consultant",
        }
