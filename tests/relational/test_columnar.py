"""Columnar substrate equivalence: row-store vs columnar, bit for bit.

The columnar :class:`ColumnarTable` must be a drop-in for the row store at
every layer — same Table API semantics, same CoW isolation, same CSV parse
and emit bytes, and identical protect / detect / attack results.  This suite
runs both substrates side by side, mirroring the PR 1 golden equivalence
pattern (``tests/watermarking/test_batch_equivalence.py``).
"""

from __future__ import annotations

import csv
import io
import itertools
import pickle

import pytest

from repro.attacks.addition import SubsetAdditionAttack
from repro.attacks.alteration import SubsetAlterationAttack
from repro.attacks.deletion import DeletionMode, SubsetDeletionAttack
from repro.attacks.generalization_attack import GeneralizationAttack
from repro.binning.binner import BinnedTable, BinningAgent, rewrite_rows, rewrite_table
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.crypto.cipher import FieldEncryptor
from repro.relational.columnar import ColumnarTable, TypedColumn
from repro.relational.io import parse_row
from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema
from repro.relational.table import Table
from repro.service.executor import ShardExecutor
from repro.service.runners import (
    ProtectPlan,
    WatermarkerSpec,
    collect_raw_chunk,
    protect_raw_chunk,
)
from repro.service.streaming import iter_tables, render_csv_rows
from repro.service.wire import table_to_csv_lines
from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import Mark, random_mark

MARK = random_mark(20, seed="columnar-equivalence")
KEY = WatermarkKey.from_secret("columnar-equivalence-secret", eta=10)
ENCRYPTION_KEY = "test-encryption-key"


# --------------------------------------------------------------------- helpers
def _as_columnar(table: Table) -> ColumnarTable:
    return ColumnarTable(table.schema, table.rows)


def _detection_equal(left, right):
    assert left.mark.bits == right.mark.bits
    assert left.wmd_bits == right.wmd_bits
    assert left.positions_with_votes == right.positions_with_votes
    assert left.tuples_selected == right.tuples_selected
    assert left.cells_read == right.cells_read
    assert left.votes_cast == right.votes_cast


def _votes_equal(left, right):
    assert left.wmd_length == right.wmd_length
    assert left.votes == right.votes
    assert left.tuples_selected == right.tuples_selected
    assert left.cells_read == right.cells_read
    assert left.votes_cast == right.votes_cast


def _embedding_equal(left, right):
    assert left.watermarked.table == right.watermarked.table
    assert left.tuples_selected == right.tuples_selected
    assert left.cells_embedded == right.cells_embedded
    assert left.cells_changed == right.cells_changed
    assert left.cells_skipped_no_bandwidth == right.cells_skipped_no_bandwidth


def _binned_metadata(binned: BinnedTable) -> dict:
    return {
        "trees": binned.trees,
        "quasi_columns": binned.quasi_columns,
        "ultimate_nodes": dict(binned.ultimate_nodes),
        "maximal_nodes": dict(binned.maximal_nodes),
        "minimal_nodes": dict(binned.minimal_nodes),
        "k": binned.k,
    }


# -------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def binned_columnar(trees, depth1_metrics, medium_table):
    """``binned_small``'s twin, binned from a columnar copy of the same table."""
    agent = BinningAgent(
        trees,
        depth1_metrics,
        KAnonymitySpec(k=10, mode=EnforcementMode.MONO),
        ENCRYPTION_KEY,
    )
    return agent.bin(_as_columnar(medium_table))


@pytest.fixture(scope="module")
def watermarkers():
    return (
        HierarchicalWatermarker(KEY, copies=3),
        HierarchicalWatermarker(KEY, copies=3),
    )


@pytest.fixture()
def schema():
    return TableSchema(
        (
            Column("id", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL),
            Column("ward", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL),
            Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC),
        )
    )


@pytest.fixture()
def rows():
    return [
        {"id": f"p{i}", "ward": "Cardiology" if i % 2 else "Trauma", "age": 20 + i}
        for i in range(10)
    ]


@pytest.fixture()
def pair(schema, rows):
    return Table(schema, rows), ColumnarTable(schema, rows)


# ----------------------------------------------------------------- typed store
class TestTypedColumn:
    def test_int_column_uses_int64_array(self):
        column = TypedColumn.from_values([1, 2, 3])
        assert column.kind == "q"
        assert column.tolist() == [1, 2, 3]
        assert all(type(value) is int for value in column.tolist())

    def test_float_column_uses_float64_array(self):
        column = TypedColumn.from_values([1.5, 2.0])
        assert column.kind == "d"
        assert all(type(value) is float for value in column.tolist())

    def test_mixed_types_spill_to_object_list(self):
        column = TypedColumn()
        column.append(1)
        column.append(2.5)
        assert column.kind == "o"
        assert type(column[0]) is int and type(column[1]) is float

    def test_huge_int_spills_instead_of_overflowing(self):
        column = TypedColumn.from_values([1, 1 << 70])
        assert column.kind == "o"
        assert column[1] == 1 << 70
        column = TypedColumn()
        column.append(1)
        column.append(1 << 70)
        assert column.kind == "o" and column[1] == 1 << 70

    def test_bool_is_not_stored_as_int(self):
        # array('q') would coerce True to 1; the column must keep the bool.
        column = TypedColumn.from_values([True, False])
        assert column.kind == "o"
        assert column[0] is True

    def test_setitem_spills_on_type_change(self):
        column = TypedColumn.from_values([1, 2, 3])
        column[1] = "two"
        assert column.kind == "o"
        assert column.tolist() == [1, "two", 3]

    def test_strings_stay_in_object_list(self):
        column = TypedColumn.from_values(["a", "b"])
        assert column.kind == "o"


# ------------------------------------------------------------------ API parity
class TestTableApiParity:
    def test_equality_both_directions(self, pair):
        row_table, col_table = pair
        assert row_table == col_table
        assert col_table == row_table

    def test_row_views_compare_like_dicts(self, pair):
        row_table, col_table = pair
        assert col_table[0] == row_table[0]
        assert row_table[0] == col_table[0]
        assert dict(col_table[0].items()) == row_table[0]
        assert col_table[-1] == row_table[len(row_table) - 1]

    def test_insert_validation_matches(self, pair):
        _, col_table = pair
        with pytest.raises(ValueError):
            col_table.insert({"id": "x", "ward": "Trauma"})  # missing column
        with pytest.raises(ValueError):
            col_table.insert({"id": "x", "ward": "Trauma", "age": 1, "extra": 2})

    def test_queries_match(self, pair):
        row_table, col_table = pair
        assert col_table.column_values("age") == row_table.column_values("age")
        assert col_table.distinct_values("ward") == row_table.distinct_values("ward")
        assert col_table.group_by_count(["ward"]) == row_table.group_by_count(["ward"])
        assert col_table.group_by_count(["ward", "age"]) == row_table.group_by_count(
            ["ward", "age"]
        )
        assert col_table.value_counts("ward") == row_table.value_counts("ward")
        with pytest.raises(KeyError):
            col_table.column_values("nope")
        with pytest.raises(KeyError):
            col_table.group_by_count(["ward", "nope"])

    def test_mutations_match(self, pair):
        row_table, col_table = pair
        predicate = lambda row: row["ward"] == "Trauma"
        updater = lambda row: row.update(age=0)
        assert col_table.update_where(predicate, updater) == row_table.update_where(
            predicate, updater
        )
        assert col_table == row_table
        assert col_table.delete_indices([0, 3]) == row_table.delete_indices([0, 3])
        assert col_table.delete_where(predicate) == row_table.delete_where(predicate)
        assert col_table == row_table
        with pytest.raises(IndexError):
            col_table.delete_indices([999])

    def test_select_matches_and_isolates(self, pair):
        row_table, col_table = pair
        row_selected = row_table.select(lambda row: row["age"] > 24)
        col_selected = col_table.select(lambda row: row["age"] > 24)
        assert row_selected == col_selected
        col_selected.mutable_row(0)["age"] = -1
        assert all(row["age"] != -1 for row in col_table)

    def test_set_cells_matches(self, pair):
        row_table, col_table = pair
        row_table.set_cells("age", [1, 4], [100, 200])
        col_table.set_cells("age", [1, 4], [100, 200])
        assert row_table == col_table

    def test_copy_and_with_schema(self, pair, schema):
        row_table, col_table = pair
        assert col_table.copy() == row_table.copy()
        assert col_table.with_schema(schema) == row_table.with_schema(schema)

    def test_pickle_roundtrip(self, pair):
        _, col_table = pair
        assert pickle.loads(pickle.dumps(col_table)) == col_table


# ------------------------------------------------------------------------- CoW
class TestColumnarCoW:
    def test_lazy_copy_isolates_both_directions(self, pair):
        _, table = pair
        twin = table.lazy_copy()
        twin.mutable_row(3)["ward"] = "Oncology"
        assert table[3]["ward"] != "Oncology" and twin[3]["ward"] == "Oncology"
        table.mutable_row(0)["age"] = 99
        assert twin[0]["age"] == 20 and table[0]["age"] == 99

    def test_chained_lazy_copies(self, pair):
        _, table = pair
        first = table.lazy_copy()
        second = first.lazy_copy()
        second.mutable_row(0)["ward"] = "Oncology"
        assert first[0]["ward"] != "Oncology"
        assert table[0]["ward"] != "Oncology"

    def test_update_where_respects_cow(self, pair):
        _, table = pair
        twin = table.lazy_copy()
        touched = twin.update_where(
            lambda row: row["ward"] == "Trauma", lambda row: row.update(age=0)
        )
        assert touched == 5
        assert all(row["age"] == 0 for row in twin if row["ward"] == "Trauma")
        assert all(row["age"] != 0 for row in table)

    def test_deletion_on_the_copy_keeps_the_source(self, pair):
        _, table = pair
        twin = table.lazy_copy()
        twin.delete_indices([0, 1, 2])
        assert len(twin) == 7 and len(table) == 10
        twin.delete_where(lambda row: row["ward"] == "Trauma")
        assert len(table) == 10

    def test_insert_after_lazy_copy_is_private(self, pair):
        _, table = pair
        twin = table.lazy_copy()
        twin.insert({"id": "new", "ward": "Trauma", "age": 50})
        assert len(twin) == 11 and len(table) == 10

    def test_slice_view_isolates(self, pair):
        _, table = pair
        view = table.slice_view(2, 5)
        assert len(view) == 3 and view[0] == table[2]
        view.mutable_row(0)["age"] = -1
        assert table[2]["age"] != -1

    def test_mutable_row_on_owned_table_writes_in_place(self, pair):
        _, table = pair
        table.mutable_row(2)["age"] = 77
        assert table[2]["age"] == 77


# ------------------------------------------------------------------------- CSV
class TestCsvEquivalence:
    def _roundtrip(self, text: str, schema: TableSchema, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text(text)
        return Table.from_csv(str(path), schema), ColumnarTable.from_csv(str(path), schema)

    def test_roundtrip_matches_row_store(self, pair, tmp_path):
        row_table, _ = pair
        path = tmp_path / "roundtrip.csv"
        row_table.to_csv(str(path))
        row_back = Table.from_csv(str(path), row_table.schema)
        col_back = ColumnarTable.from_csv(str(path), row_table.schema)
        assert row_back == col_back == row_table
        # Exact cell types survive: ints stay int through the typed column.
        assert all(type(value) is int for value in col_back.column_values("age"))

    def test_numeric_coercion_matches(self, schema, tmp_path):
        text = 'id,ward,age\na,T,1e5\nb,T,-2.0\nc,T,37\nd,T,"[25,30)"\n'
        row_table, col_table = self._roundtrip(text, schema, tmp_path)
        assert row_table == col_table
        assert type(col_table[2]["age"]) is int

    def test_duplicate_header_last_wins(self, schema, tmp_path):
        text = "id,ward,age,ward\na,IGNORED,30,Trauma\n"
        row_table, col_table = self._roundtrip(text, schema, tmp_path)
        assert row_table == col_table
        assert col_table[0]["ward"] == "Trauma"

    def test_short_rows_pad_with_restval(self, schema, tmp_path):
        text = "id,ward,age\na,Trauma,30\nb\n"
        with pytest.raises(ValueError):
            # The padded cell "None" fails numeric coercion — on both paths.
            self._roundtrip(text, schema, tmp_path)
        text = "id,age,ward\na,30,Trauma\nb,31\n"
        row_table, col_table = self._roundtrip(text, schema, tmp_path)
        assert row_table == col_table
        assert col_table[1]["ward"] == "None"

    def test_extra_cells_and_columns_ignored(self, schema, tmp_path):
        text = "id,ward,age,junk\na,Trauma,30,zzz\nb,Trauma,31,zzz,overflow\n"
        row_table, col_table = self._roundtrip(text, schema, tmp_path)
        assert row_table == col_table and len(col_table) == 2

    def test_blank_lines_skipped(self, schema, tmp_path):
        text = "id,ward,age\na,Trauma,30\n\nb,Trauma,31\n"
        row_table, col_table = self._roundtrip(text, schema, tmp_path)
        assert row_table == col_table and len(col_table) == 2

    def test_missing_schema_column_raises(self, schema, tmp_path):
        text = "id,ward\na,Trauma\n"
        path = tmp_path / "bad.csv"
        path.write_text(text)
        with pytest.raises(ValueError, match="missing column 'age'"):
            Table.from_csv(str(path), schema)
        with pytest.raises(ValueError, match="missing column 'age'"):
            ColumnarTable.from_csv(str(path), schema)

    def test_quoted_newlines_in_cells(self, schema, tmp_path):
        text = 'id,ward,age\na,"Trauma\nUnit",30\n'
        row_table, col_table = self._roundtrip(text, schema, tmp_path)
        assert row_table == col_table
        assert col_table[0]["ward"] == "Trauma\nUnit"

    def test_chunk_parse_matches_dictreader(self, pair):
        row_table, _ = pair
        header, lines = table_to_csv_lines(row_table)
        chunk = ColumnarTable.from_csv_chunk(row_table.schema, header, lines)
        reference = Table(row_table.schema)
        for raw in csv.DictReader(itertools.chain([header], lines)):
            reference.insert(parse_row(raw, row_table.schema))
        assert chunk == reference == row_table

    def test_iter_tables_yields_columnar_chunks(self, pair, tmp_path):
        row_table, _ = pair
        path = tmp_path / "stream.csv"
        row_table.to_csv(str(path))
        chunks = list(iter_tables(str(path), row_table.schema, chunk_size=4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]
        assert all(isinstance(chunk, ColumnarTable) for chunk in chunks)
        merged = [dict(row.items()) for chunk in chunks for row in chunk]
        assert merged == row_table.rows

    def test_render_csv_rows_byte_identical(self, pair):
        row_table, col_table = pair
        assert render_csv_rows(row_table.schema, row_table) == render_csv_rows(
            col_table.schema, col_table
        )

    def test_table_to_csv_lines_byte_identical(self, pair):
        row_table, col_table = pair
        assert table_to_csv_lines(row_table) == table_to_csv_lines(col_table)


# ------------------------------------------------------- golden protect/detect
class TestGoldenSubstrateEquivalence:
    """The PR 1 golden pattern, across substrates instead of across engines."""

    def test_binning_is_bit_identical(self, binned_small, binned_columnar):
        assert isinstance(binned_columnar.binned.table, ColumnarTable)
        assert binned_small.binned.table == binned_columnar.binned.table
        assert binned_small.binned.ultimate_nodes == binned_columnar.binned.ultimate_nodes
        assert binned_small.binned.maximal_nodes == binned_columnar.binned.maximal_nodes
        assert binned_small.binned.minimal_nodes == binned_columnar.binned.minimal_nodes
        assert binned_small.information_losses == binned_columnar.information_losses
        assert (
            binned_small.normalized_information_loss
            == binned_columnar.normalized_information_loss
        )

    def test_ident_values_equal(self, binned_small, binned_columnar):
        assert binned_small.binned.ident_values() == binned_columnar.binned.ident_values()

    def test_embed_is_bit_identical(self, binned_small, binned_columnar, watermarkers):
        row_wm, col_wm = watermarkers
        _embedding_equal(
            row_wm.embed(binned_small.binned, MARK),
            col_wm.embed(binned_columnar.binned, MARK),
        )

    def test_embedding_leaves_the_source_untouched(self, binned_columnar, watermarkers):
        _, col_wm = watermarkers
        before = binned_columnar.binned.table.copy()
        embedding = col_wm.embed(binned_columnar.binned, MARK)
        assert binned_columnar.binned.table == before
        embedding.watermarked.table.mutable_row(0)["symptom"] = "poisoned"
        assert binned_columnar.binned.table == before

    def test_clean_detection_is_bit_identical(self, binned_small, binned_columnar, watermarkers):
        row_wm, col_wm = watermarkers
        row_marked = row_wm.embed(binned_small.binned, MARK).watermarked
        col_marked = col_wm.embed(binned_columnar.binned, MARK).watermarked
        _detection_equal(
            row_wm.detect(row_marked, len(MARK)),
            col_wm.detect(col_marked, len(MARK)),
        )

    @pytest.mark.parametrize(
        "attack",
        [
            SubsetAlterationAttack(0.4, seed=5),
            SubsetAdditionAttack(0.4, seed=5),
            SubsetDeletionAttack(0.4, seed=5, mode=DeletionMode.RANDOM),
            SubsetDeletionAttack(0.4, seed=5, mode=DeletionMode.IDENT_RANGES),
            GeneralizationAttack(levels=1),
        ],
        ids=["alteration", "addition", "deletion-random", "deletion-ranges", "generalization"],
    )
    def test_attacks_and_detection_after_attack(
        self, binned_small, binned_columnar, watermarkers, attack
    ):
        row_wm, col_wm = watermarkers
        row_marked = row_wm.embed(binned_small.binned, MARK).watermarked
        col_marked = col_wm.embed(binned_columnar.binned, MARK).watermarked
        row_result = attack.run(row_marked)
        col_result = attack.run(col_marked)
        assert row_result.rows_touched == col_result.rows_touched
        assert row_result.details == col_result.details
        assert row_result.attacked.table == col_result.attacked.table
        _detection_equal(
            row_wm.detect(row_result.attacked, len(MARK)),
            col_wm.detect(col_result.attacked, len(MARK)),
        )

    def test_runner_detects_are_bit_identical_across_substrates(
        self, binned_small, binned_columnar, watermarkers
    ):
        """Serial, thread and process runners agree on both substrates."""
        row_wm, col_wm = watermarkers
        row_marked = row_wm.embed(binned_small.binned, MARK).watermarked
        col_marked = col_wm.embed(binned_columnar.binned, MARK).watermarked
        serial = row_wm.detect(row_marked, len(MARK))
        for runner in ("thread", "process"):
            executor = ShardExecutor(2, runner=runner)
            _detection_equal(serial, executor.detect(col_wm, col_marked, len(MARK), shards=3))
            _detection_equal(serial, executor.detect(row_wm, row_marked, len(MARK), shards=3))


# ------------------------------------------------------------ runner raw chunks
class TestRawChunkEquivalence:
    """Worker-side chunk tasks: columnar ingest == the seed's dict ingest."""

    def test_collect_raw_chunk_votes_match_row_store(self, binned_small, watermarkers):
        row_wm, _ = watermarkers
        marked = row_wm.embed(binned_small.binned, MARK).watermarked
        header, lines = table_to_csv_lines(marked.table)
        spec = WatermarkerSpec.of(row_wm)
        metadata = {"identifying_columns": marked.identifying_columns, **_binned_metadata(marked)}
        count, votes = collect_raw_chunk(
            spec, marked.table.schema, metadata, header, lines, len(MARK)
        )
        assert count == len(marked.table)
        reference_table = Table(marked.table.schema)
        for raw in csv.DictReader(itertools.chain([header], lines)):
            reference_table.insert(parse_row(raw, marked.table.schema))
        reference = BinnedTable(table=reference_table, **metadata)
        _votes_equal(votes, row_wm.collect_votes(reference, len(MARK)))

    def test_protect_raw_chunk_bytes_match_row_store(
        self, binned_small, medium_table, watermarkers
    ):
        row_wm, _ = watermarkers
        binned = binned_small.binned
        header, lines = table_to_csv_lines(medium_table)
        spec = WatermarkerSpec.of(row_wm)
        metadata = _binned_metadata(binned)
        plan = ProtectPlan(
            spec=spec,
            schema=medium_table.schema,
            metadata=metadata,
            identifying_columns=binned.identifying_columns,
            encryption_key=ENCRYPTION_KEY,
            mark_bits=str(MARK),
        )
        chunk = protect_raw_chunk(plan, header, lines)

        # Reference: the seed's row-store pipeline over the same records.
        encryptor = FieldEncryptor(ENCRYPTION_KEY)
        ultimate = binned.ultimate_generalizations()
        parsed = (
            parse_row(raw, medium_table.schema)
            for raw in csv.DictReader(itertools.chain([header], lines))
        )
        reference_table = Table(medium_table.schema)
        for new_row in rewrite_rows(parsed, medium_table.schema, encryptor, ultimate):
            reference_table.insert(new_row)
        reference_binned = BinnedTable(
            table=reference_table,
            identifying_columns=binned.identifying_columns,
            **metadata,
        )
        embedding = HierarchicalWatermarker(KEY, copies=3).embed(
            reference_binned, Mark.from_string(str(MARK))
        )
        assert chunk.rows == len(reference_table)
        assert chunk.tuples_selected == embedding.tuples_selected
        assert chunk.cells_changed == embedding.cells_changed
        assert chunk.text == render_csv_rows(medium_table.schema, embedding.watermarked.table)


# ------------------------------------------------------------------ encryption
class TestEncryptManyEquivalence:
    def test_bit_identical_to_scalar(self):
        encryptor = FieldEncryptor("columnar-cipher-key")
        values = ["alpha", 1234567890, "alpha", "", "a-much-longer-identifier-" * 4, 3.5]
        assert encryptor.encrypt_many(values) == [encryptor.encrypt(v) for v in values]

    def test_tokens_decrypt_back(self):
        encryptor = FieldEncryptor("columnar-cipher-key")
        values = ["alpha", "beta", "alpha"]
        tokens = encryptor.encrypt_many(values)
        assert [encryptor.decrypt(token) for token in tokens] == values

    def test_rewrite_table_row_vs_columnar(self, binned_small, medium_table):
        binned = binned_small.binned
        encryptor = FieldEncryptor(ENCRYPTION_KEY)
        ultimate = binned.ultimate_generalizations()
        row_rewritten = rewrite_table(medium_table, medium_table.schema, encryptor, ultimate)
        col_rewritten = rewrite_table(
            _as_columnar(medium_table), medium_table.schema, encryptor, ultimate
        )
        assert isinstance(row_rewritten, Table) and not isinstance(row_rewritten, ColumnarTable)
        assert isinstance(col_rewritten, ColumnarTable)
        assert row_rewritten == col_rewritten == binned.table
