"""Tests for the schema-aware CSV parsing layer (repro/relational/io.py)."""

import math

import pytest

from repro.dht.node import Interval
from repro.relational.io import (
    coerce_numeric_cell,
    iter_csv_rows,
    parse_cell,
    parse_row,
    write_csv_rows,
)
from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema
from repro.relational.table import Table


@pytest.fixture()
def schema():
    return TableSchema(
        (
            Column("id", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL),
            Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC),
            Column("ward", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL),
        )
    )


class TestIntervalFromString:
    @pytest.mark.parametrize(
        "text,lower,upper",
        [
            ("[25,30)", 25.0, 30.0),
            ("[25.0,30.0)", 25.0, 30.0),
            ("[25.0, 30.0)", 25.0, 30.0),
            ("  [2.5e1,3e1)  ", 25.0, 30.0),
            ("[-10,-2.5)", -10.0, -2.5),
            ("[0,inf)", 0.0, math.inf),
        ],
    )
    def test_accepted_forms(self, text, lower, upper):
        interval = Interval.from_string(text)
        assert interval.lower == lower and interval.upper == upper

    @pytest.mark.parametrize(
        "text", ["25,30", "[25,30]", "(25,30)", "[25;30)", "[25)", "[a,b)", "[1,2,3)", ""]
    )
    def test_rejected_forms(self, text):
        with pytest.raises(ValueError):
            Interval.from_string(text)

    def test_str_round_trip(self):
        for interval in (Interval(25, 30), Interval(-2.5, 0.25), Interval(0, 150)):
            assert Interval.from_string(str(interval)) == interval


class TestCellParsing:
    def test_numeric_scalar_forms(self):
        assert coerce_numeric_cell("37") == 37 and isinstance(coerce_numeric_cell("37"), int)
        assert coerce_numeric_cell("-2.0") == pytest.approx(-2.0)
        assert coerce_numeric_cell("1e5") == pytest.approx(100000.0)
        assert math.isnan(coerce_numeric_cell("nan"))

    def test_numeric_interval_form(self):
        assert coerce_numeric_cell("[25,30)") == Interval(25.0, 30.0)

    def test_categorical_kept_verbatim(self):
        assert parse_cell("[25,30)", ColumnType.CATEGORICAL) == "[25,30)"
        assert parse_cell("Cardiology", ColumnType.CATEGORICAL) == "Cardiology"

    def test_parse_row_missing_column(self, schema):
        with pytest.raises(ValueError, match="missing column"):
            parse_row({"id": "a", "age": "1"}, schema)


class TestCsvRoundTrip:
    def test_interval_cells_round_trip(self, schema, tmp_path):
        rows = [
            {"id": "a", "age": Interval(25, 30), "ward": "Trauma"},
            {"id": "b", "age": 41, "ward": "Cardiology"},
            {"id": "c", "age": Interval(0.5, 1.25), "ward": "Oncology"},
        ]
        path = tmp_path / "mixed.csv"
        assert write_csv_rows(str(path), schema, rows) == 3
        back = list(iter_csv_rows(str(path), schema))
        assert back == rows

    def test_table_from_csv_accepts_protected_intervals(self, schema, tmp_path):
        """The historical asymmetry: ``to_csv`` wrote intervals the reader rejected."""
        table = Table(schema)
        table.insert({"id": "a", "age": Interval(25, 30), "ward": "Trauma"})
        path = tmp_path / "protected.csv"
        table.to_csv(str(path))
        back = Table.from_csv(str(path), schema)
        assert back.rows == table.rows

    def test_iter_csv_rows_is_lazy(self, schema, tmp_path):
        path = tmp_path / "big.csv"
        write_csv_rows(
            str(path),
            schema,
            ({"id": str(i), "age": i % 90, "ward": "Trauma"} for i in range(100)),
        )
        iterator = iter_csv_rows(str(path), schema)
        first = next(iterator)
        assert first["id"] == "0" and first["age"] == 0
        assert sum(1 for _ in iterator) == 99
