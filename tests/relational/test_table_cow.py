"""Copy-on-write table semantics, Counter-based aggregation and CSV coercion."""

from __future__ import annotations

import math

import pytest

from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema
from repro.relational.table import Table


@pytest.fixture()
def schema():
    return TableSchema(
        (
            Column("id", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL),
            Column("ward", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL),
            Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC),
        )
    )


@pytest.fixture()
def table(schema):
    return Table(
        schema,
        [
            {"id": f"p{i}", "ward": "Cardiology" if i % 2 else "Trauma", "age": 20 + i}
            for i in range(10)
        ],
    )


class TestLazyCopy:
    def test_shares_row_dicts_until_mutation(self, table):
        twin = table.lazy_copy()
        assert twin == table
        assert all(a is b for a, b in zip(table.rows, twin.rows))

    def test_mutable_row_isolates_the_copy(self, table):
        twin = table.lazy_copy()
        twin.mutable_row(3)["ward"] = "Oncology"
        assert twin[3]["ward"] == "Oncology"
        assert table[3]["ward"] != "Oncology"
        # Untouched rows remain shared.
        assert table[4] is twin[4]

    def test_mutation_through_the_source_is_isolated_too(self, table):
        twin = table.lazy_copy()
        table.mutable_row(0)["age"] = 99
        assert table[0]["age"] == 99
        assert twin[0]["age"] == 20

    def test_update_where_respects_cow(self, table):
        twin = table.lazy_copy()
        touched = twin.update_where(lambda row: row["ward"] == "Trauma", lambda row: row.update(age=0))
        assert touched == 5
        assert all(row["age"] == 0 for row in twin if row["ward"] == "Trauma")
        assert all(row["age"] != 0 for row in table)

    def test_deletion_on_the_copy_keeps_the_source(self, table):
        twin = table.lazy_copy()
        twin.delete_indices([0, 1, 2])
        assert len(twin) == 7 and len(table) == 10
        twin.delete_where(lambda row: row["ward"] == "Trauma")
        assert len(table) == 10
        # Ownership flags stay aligned with the surviving rows.
        twin.mutable_row(0)["ward"] = "Neurology"
        assert all(row["ward"] != "Neurology" for row in table)

    def test_insert_after_lazy_copy_is_private(self, table, schema):
        twin = table.lazy_copy()
        twin.insert({"id": "new", "ward": "Trauma", "age": 50})
        assert len(twin) == 11 and len(table) == 10
        twin.mutable_row(10)["age"] = 51  # private row: no copy needed
        assert twin[10]["age"] == 51

    def test_chained_lazy_copies(self, table):
        first = table.lazy_copy()
        second = first.lazy_copy()
        second.mutable_row(0)["ward"] = "Oncology"
        assert first[0]["ward"] != "Oncology"
        assert table[0]["ward"] != "Oncology"

    def test_mutable_row_on_owned_table_returns_same_dict(self, table):
        assert table.mutable_row(2) is table[2]

    def test_deep_copy_still_isolates_everything(self, table):
        deep = table.copy()
        deep[0]["ward"] = "Oncology"
        assert table[0]["ward"] != "Oncology"


class TestCounterAggregation:
    def test_value_counts(self, table):
        assert table.value_counts("ward") == {"Cardiology": 5, "Trauma": 5}
        with pytest.raises(KeyError):
            table.value_counts("nope")

    def test_group_by_count_single_column_keys_are_tuples(self, table):
        counts = table.group_by_count(["ward"])
        assert counts == {("Cardiology",): 5, ("Trauma",): 5}

    def test_group_by_count_multi_column(self, table):
        counts = table.group_by_count(["ward", "age"])
        assert sum(counts.values()) == len(table)
        assert counts[("Trauma", 20)] == 1
        with pytest.raises(KeyError):
            table.group_by_count(["ward", "nope"])


class TestFromCsvCoercion:
    def test_scientific_negative_and_nan(self, schema, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text(
            "id,ward,age\n"
            "a,Trauma,1e5\n"
            "b,Trauma,-2.0\n"
            "c,Trauma,nan\n"
            "d,Trauma,37\n"
            "e,Trauma,-12\n"
        )
        table = Table.from_csv(str(path), schema)
        ages = table.column_values("age")
        assert ages[0] == pytest.approx(100000.0)
        assert ages[1] == pytest.approx(-2.0)
        assert math.isnan(ages[2])
        assert ages[3] == 37 and isinstance(ages[3], int)
        assert ages[4] == -12 and isinstance(ages[4], int)

    def test_round_trip(self, table, tmp_path):
        path = tmp_path / "roundtrip.csv"
        table.to_csv(str(path))
        back = Table.from_csv(str(path), table.schema)
        assert back.column_values("age") == table.column_values("age")

    def test_garbage_still_raises(self, schema, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,ward,age\na,Trauma,not-a-number\n")
        with pytest.raises(ValueError):
            Table.from_csv(str(path), schema)
