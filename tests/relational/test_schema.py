"""Tests for column and table schemas."""

import pytest

from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema, medical_schema


def _columns():
    return (
        Column("ssn", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL),
        Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC),
        Column("ward", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL),
        Column("note", ColumnKind.OTHER, ColumnType.CATEGORICAL),
    )


class TestColumn:
    def test_flags(self):
        ssn, age, _, note = _columns()
        assert ssn.is_identifying and not ssn.is_quasi_identifying
        assert age.is_quasi_identifying and age.is_numeric
        assert not note.is_identifying and not note.is_quasi_identifying

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Column("", ColumnKind.OTHER, ColumnType.CATEGORICAL)

    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            _columns()[0].name = "other"  # type: ignore[misc]


class TestTableSchema:
    def test_basic_queries(self):
        schema = TableSchema(_columns())
        assert len(schema) == 4
        assert schema.column_names == ["ssn", "age", "ward", "note"]
        assert "age" in schema
        assert "missing" not in schema
        assert schema.column("age").ctype is ColumnType.NUMERIC
        assert schema.index_of("ward") == 2

    def test_unknown_column_raises(self):
        schema = TableSchema(_columns())
        with pytest.raises(KeyError):
            schema.column("missing")
        with pytest.raises(KeyError):
            schema.index_of("missing")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TableSchema(_columns() + (Column("age", ColumnKind.OTHER, ColumnType.NUMERIC),))

    def test_kind_partitions(self):
        schema = TableSchema(_columns())
        assert [c.name for c in schema.identifying_columns] == ["ssn"]
        assert [c.name for c in schema.quasi_identifying_columns] == ["age", "ward"]
        assert [c.name for c in schema.other_columns] == ["note"]

    def test_validate_row(self):
        schema = TableSchema(_columns())
        schema.validate_row({"ssn": "1", "age": 3, "ward": "x", "note": "y"})
        with pytest.raises(ValueError):
            schema.validate_row({"ssn": "1", "age": 3, "ward": "x"})
        with pytest.raises(ValueError):
            schema.validate_row({"ssn": "1", "age": 3, "ward": "x", "note": "y", "extra": 1})

    def test_with_column(self):
        schema = TableSchema(_columns())
        extended = schema.with_column(Column("zip", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL))
        assert "zip" in extended
        assert "zip" not in schema

    def test_replace_kind(self):
        schema = TableSchema(_columns())
        changed = schema.replace_kind("note", ColumnKind.QUASI_IDENTIFYING)
        assert changed.column("note").kind is ColumnKind.QUASI_IDENTIFYING
        assert schema.column("note").kind is ColumnKind.OTHER
        with pytest.raises(KeyError):
            schema.replace_kind("missing", ColumnKind.OTHER)

    def test_iteration_order(self):
        schema = TableSchema(_columns())
        assert [column.name for column in schema] == schema.column_names


class TestMedicalSchema:
    def test_matches_the_papers_relation(self):
        schema = medical_schema()
        assert schema.column_names == ["ssn", "age", "zip_code", "doctor", "symptom", "prescription"]
        assert [c.name for c in schema.identifying_columns] == ["ssn"]
        assert len(schema.quasi_identifying_columns) == 5
        assert schema.column("age").is_numeric
        assert not schema.column("symptom").is_numeric
