"""Tests for the query helpers."""

import pytest

from repro.relational.query import delete_where, equals, group_by_count, in_range, project, select_where
from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema
from repro.relational.table import Table


@pytest.fixture()
def table():
    schema = TableSchema(
        (
            Column("ssn", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL),
            Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC),
        )
    )
    return Table(schema, [{"ssn": f"{i:03d}", "age": 20 + i} for i in range(10)])


class TestPredicates:
    def test_equals(self, table):
        assert len(select_where(table, equals("ssn", "003"))) == 1
        assert len(select_where(table, equals("ssn", "nope"))) == 0

    def test_in_range_exclusive(self, table):
        selected = select_where(table, in_range("age", 22, 25))
        assert sorted(row["age"] for row in selected) == [23, 24]

    def test_in_range_inclusive(self, table):
        selected = select_where(table, in_range("age", 22, 25, inclusive=True))
        assert sorted(row["age"] for row in selected) == [22, 23, 24, 25]

    def test_in_range_on_strings_matches_sql_clause(self, table):
        # The paper's deletion attack: DELETE WHERE SSN > lval AND SSN < uval.
        selected = select_where(table, in_range("ssn", "002", "006"))
        assert [row["ssn"] for row in selected] == ["003", "004", "005"]


class TestOperations:
    def test_delete_where(self, table):
        assert delete_where(table, in_range("age", 21, 24)) == 2
        assert len(table) == 8

    def test_project(self, table):
        rows = project(table, ["ssn", "age"])
        assert rows[0] == ("000", 20)
        assert len(rows) == 10

    def test_project_unknown_column(self, table):
        with pytest.raises(KeyError):
            project(table, ["missing"])

    def test_group_by_count(self, table):
        table.insert({"ssn": "999", "age": 20})
        counts = group_by_count(table, ["age"])
        assert counts[(20,)] == 2
