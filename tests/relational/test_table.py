"""Tests for the in-memory table."""

import pytest

from repro.relational.schema import Column, ColumnKind, ColumnType, TableSchema
from repro.relational.table import Table


@pytest.fixture()
def schema():
    return TableSchema(
        (
            Column("id", ColumnKind.IDENTIFYING, ColumnType.CATEGORICAL),
            Column("age", ColumnKind.QUASI_IDENTIFYING, ColumnType.NUMERIC),
            Column("ward", ColumnKind.QUASI_IDENTIFYING, ColumnType.CATEGORICAL),
        )
    )


@pytest.fixture()
def table(schema):
    rows = [
        {"id": "a", "age": 30, "ward": "Cardiology"},
        {"id": "b", "age": 41, "ward": "Cardiology"},
        {"id": "c", "age": 30, "ward": "Trauma"},
        {"id": "d", "age": 65, "ward": "Trauma"},
    ]
    return Table(schema, rows)


class TestInsertion:
    def test_len_and_iteration(self, table):
        assert len(table) == 4
        assert [row["id"] for row in table] == ["a", "b", "c", "d"]

    def test_indexing(self, table):
        assert table[0]["id"] == "a"
        assert table[-1]["id"] == "d"

    def test_insert_validates_schema(self, table):
        with pytest.raises(ValueError):
            table.insert({"id": "e", "age": 10})
        with pytest.raises(ValueError):
            table.insert({"id": "e", "age": 10, "ward": "X", "extra": 1})

    def test_insert_many(self, schema):
        table = Table(schema)
        table.insert_many({"id": str(i), "age": i, "ward": "W"} for i in range(5))
        assert len(table) == 5

    def test_insert_copies_row(self, schema):
        source = {"id": "a", "age": 1, "ward": "W"}
        table = Table(schema, [source])
        source["age"] = 99
        assert table[0]["age"] == 1


class TestQueries:
    def test_column_values(self, table):
        assert table.column_values("age") == [30, 41, 30, 65]

    def test_column_values_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.column_values("missing")

    def test_distinct_values(self, table):
        assert table.distinct_values("ward") == {"Cardiology", "Trauma"}

    def test_select_returns_new_table(self, table):
        selected = table.select(lambda row: row["age"] == 30)
        assert len(selected) == 2
        assert len(table) == 4
        # Results share rows copy-on-write: mutation through the table API
        # isolates the source (like lazy_copy), without up-front row copies.
        selected.mutable_row(0)["age"] = 0
        assert selected[0]["age"] == 0
        assert table[0]["age"] == 30

    def test_select_source_mutation_does_not_leak_into_result(self, table):
        selected = table.select(lambda row: row["age"] == 30)
        table.mutable_row(0)["age"] = 99
        assert selected[0]["age"] == 30

    def test_group_by_count_single_column(self, table):
        assert table.group_by_count(["ward"]) == {("Cardiology",): 2, ("Trauma",): 2}

    def test_group_by_count_multi_column(self, table):
        counts = table.group_by_count(["ward", "age"])
        assert counts[("Cardiology", 30)] == 1
        assert sum(counts.values()) == 4

    def test_group_by_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.group_by_count(["missing"])

    def test_value_counts(self, table):
        assert table.value_counts("age") == {30: 2, 41: 1, 65: 1}


class TestMutation:
    def test_delete_where(self, table):
        deleted = table.delete_where(lambda row: row["ward"] == "Trauma")
        assert deleted == 2
        assert len(table) == 2

    def test_delete_indices(self, table):
        assert table.delete_indices([0, 2]) == 2
        assert [row["id"] for row in table] == ["b", "d"]

    def test_delete_indices_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.delete_indices([99])

    def test_update_where(self, table):
        touched = table.update_where(lambda row: row["age"] < 40, lambda row: row.__setitem__("ward", "X"))
        assert touched == 2
        assert table[0]["ward"] == "X"
        assert table[1]["ward"] == "Cardiology"

    def test_copy_is_deep_for_rows(self, table):
        clone = table.copy()
        clone[0]["age"] = 999
        assert table[0]["age"] == 30

    def test_equality(self, table):
        assert table == table.copy()
        other = table.copy()
        other[0]["age"] = 0
        assert table != other
        assert table != "not a table"


class TestCSV:
    def test_roundtrip(self, table, tmp_path):
        path = tmp_path / "table.csv"
        table.to_csv(str(path))
        loaded = Table.from_csv(str(path), table.schema)
        assert loaded == table

    def test_numeric_coercion(self, schema, tmp_path):
        table = Table(schema, [{"id": "a", "age": 30, "ward": "W"}, {"id": "b", "age": 2.5, "ward": "W"}])
        path = tmp_path / "t.csv"
        table.to_csv(str(path))
        loaded = Table.from_csv(str(path), schema)
        assert loaded[0]["age"] == 30 and isinstance(loaded[0]["age"], int)
        assert loaded[1]["age"] == 2.5 and isinstance(loaded[1]["age"], float)
