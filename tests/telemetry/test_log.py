"""Structured JSON logging: redaction guarantees and trace stamping."""

import io
import json
import logging

from repro.telemetry.log import (
    configure_json_logging,
    log_event,
    redact_fields,
    tenant_hash,
)
from repro.telemetry.trace import Tracer, activate, span


def fresh_logger(stream, name):
    return configure_json_logging(stream, name=name)


class TestRedaction:
    def test_blocked_names_never_pass(self):
        fields = {
            "token": "t",
            "admin_token": "t",
            "watermark_secret": "s",
            "password": "p",
            "identifier": "123-45-6789",
            "ssn": "x",
            "cell_value": "y",
            "mark_bits": "0101",
            "k1": "aa",
            "encryption_key": "bb",
            "tenant": "hospital-a",
            "tenant_id": "hospital-a",
            "rows": 100,
        }
        assert redact_fields(fields) == {"rows": 100}

    def test_tenant_hash_is_allowed_and_stable(self):
        digest = tenant_hash("hospital-a")
        assert digest == tenant_hash("hospital-a")
        assert digest != tenant_hash("hospital-b")
        assert len(digest) == 12
        assert redact_fields({"tenant_hash": digest}) == {"tenant_hash": digest}

    def test_non_scalars_become_type_names(self):
        redacted = redact_fields({"rows_list": [1, 2, 3], "mapping": {"a": 1}})
        assert redacted == {"rows_list": "<list>", "mapping": "<dict>"}

    def test_long_strings_truncate(self):
        redacted = redact_fields({"note": "x" * 1000})
        assert len(redacted["note"]) == 200


class TestJsonLines:
    def test_event_is_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = fresh_logger(stream, "repro.test.lines")
        log_event(logger, "http.request", route="detect", status=200, duration_seconds=0.5)
        doc = json.loads(stream.getvalue().strip())
        assert doc["event"] == "http.request"
        assert doc["route"] == "detect"
        assert doc["status"] == 200
        assert doc["level"] == "info"
        assert "trace_id" not in doc  # no ambient trace

    def test_trace_stamping_from_ambient_scope(self):
        stream = io.StringIO()
        logger = fresh_logger(stream, "repro.test.stamp")
        tracer = Tracer()
        with activate(tracer):
            with span("http.request") as scope:
                log_event(logger, "inside", rows=1)
        doc = json.loads(stream.getvalue().strip())
        assert doc["trace_id"] == tracer.trace_id
        assert doc["span_id"] == scope.span_id

    def test_blocked_fields_dropped_at_source(self):
        stream = io.StringIO()
        logger = fresh_logger(stream, "repro.test.redact")
        log_event(logger, "evt", token="SECRET", rows=3)
        line = stream.getvalue()
        assert "SECRET" not in line
        assert json.loads(line)["rows"] == 3

    def test_none_logger_is_noop(self):
        log_event(None, "evt", rows=1)  # must not raise

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        name = "repro.test.idem"
        logger = fresh_logger(stream, name)
        logger = configure_json_logging(stream, name=name)  # reconfigure
        log_event(logger, "once")
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert len(lines) == 1  # handlers did not stack

    def test_exception_type_recorded_without_payload(self):
        stream = io.StringIO()
        logger = fresh_logger(stream, "repro.test.exc")
        try:
            raise ValueError("cell value leaked?")
        except ValueError:
            logger.exception("boom")
        doc = json.loads(stream.getvalue().splitlines()[0])
        assert doc["exc_type"] == "ValueError"

    def test_propagation_disabled(self):
        logger = fresh_logger(io.StringIO(), "repro.test.prop")
        assert logger.propagate is False
        assert logger.level == logging.INFO
