"""Span/Tracer mechanics: scoping, propagation, pickling, tree assembly."""

import pickle

import pytest

from repro.telemetry.trace import (
    Span,
    TraceContext,
    Tracer,
    activate,
    adopt,
    capture,
    current_span_id,
    current_tracer,
    format_span_tree,
    is_valid_trace_id,
    new_span_id,
    new_trace_id,
    span,
)


class TestIds:
    def test_fresh_ids_validate(self):
        assert is_valid_trace_id(new_trace_id())
        assert is_valid_trace_id(new_span_id())

    @pytest.mark.parametrize(
        "bad",
        ["", "UPPER00", "abc", "g" * 16, "a" * 33, "deadbeef\n", 1234, None],
    )
    def test_garbage_rejected(self, bad):
        assert not is_valid_trace_id(bad)


class TestNoopPath:
    def test_span_without_scope_is_shared_noop(self):
        first = span("detect.parse", rows=5)
        second = span("protect.embed")
        assert first is second  # the singleton: telemetry off allocates nothing
        with first as scope:
            scope.set(rows=1)
            scope.done()
        assert first.closed

    def test_no_ambient_state(self):
        assert current_tracer() is None
        assert current_span_id() is None
        assert capture() is None


class TestScoping:
    def test_spans_nest_through_contextvar(self):
        tracer = Tracer()
        with activate(tracer):
            with span("outer") as outer:
                assert current_span_id() == outer.span_id
                with span("inner"):
                    pass
            assert current_span_id() is None
        spans = {s.name: s for s in tracer.spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].wall_seconds >= spans["inner"].wall_seconds

    def test_root_parent_from_adopted_headers(self):
        tracer = Tracer("ab" * 8, parent_id="cd" * 4)
        with activate(tracer):
            with span("http.request"):
                pass
        (recorded,) = tracer.spans
        assert recorded.parent_id == "cd" * 4
        assert recorded.trace_id == "ab" * 8

    def test_done_is_idempotent_and_early(self):
        tracer = Tracer()
        with activate(tracer):
            with span("stage") as scope:
                scope.done(rows=3)
                scope.done(rows=999)  # ignored: already closed
        (recorded,) = tracer.spans
        assert recorded.attrs == {"rows": 3}
        assert len(tracer.spans) == 1

    def test_attrs_via_set(self):
        tracer = Tracer()
        with activate(tracer):
            with span("stage", lines=7) as scope:
                scope.set(rows=7)
        (recorded,) = tracer.spans
        assert recorded.attrs == {"lines": 7, "rows": 7}


class TestContextPropagation:
    def test_capture_carries_live_tracer_in_process(self):
        tracer = Tracer()
        with activate(tracer):
            with span("outer") as outer:
                context = capture()
        assert context.tracer is tracer
        assert context.parent_id == outer.span_id
        with adopt(context) as local:
            assert local is None  # same process: record directly
            with span("task"):
                pass
        names = {s.name for s in tracer.spans}
        assert "task" in names

    def test_pickling_drops_live_tracer(self):
        tracer = Tracer()
        with activate(tracer):
            context = capture()
        revived = pickle.loads(pickle.dumps(context))
        assert isinstance(revived, TraceContext)
        assert revived.trace_id == tracer.trace_id
        assert revived.tracer is None

    def test_adopting_pickled_context_yields_local_tracer(self):
        tracer = Tracer()
        with activate(tracer):
            context = capture()
        revived = pickle.loads(pickle.dumps(context))
        with adopt(revived) as local:
            assert local is not None and local is not tracer
            with span("worker.stage", rows=10):
                pass
            exported = local.export()
        assert tracer.ingest(exported) == 1
        (recorded,) = tracer.spans
        assert recorded.name == "worker.stage"
        assert recorded.trace_id == tracer.trace_id

    def test_adopt_none_is_noop(self):
        with adopt(None) as local:
            assert local is None
            assert span("anything").closed  # still the noop singleton


class TestTracer:
    def test_ingest_skips_malformed_documents(self):
        tracer = Tracer()
        good = Span(
            trace_id=tracer.trace_id,
            span_id=new_span_id(),
            parent_id=None,
            name="ok",
            origin="pid:1",
            start=1.0,
            wall_seconds=0.5,
            cpu_seconds=0.4,
        ).to_json()
        assert tracer.ingest([good, {"nope": 1}, "garbage" and {}, None and {}]) == 1

    def test_span_cap_counts_drops(self):
        tracer = Tracer()
        template = dict(
            parent_id=None, name="s", origin="pid:1", start=0.0, wall_seconds=0.0, cpu_seconds=0.0
        )
        for index in range(Tracer.MAX_SPANS + 5):
            tracer.record(
                Span(trace_id=tracer.trace_id, span_id=f"{index:08x}", **template)
            )
        assert len(tracer.spans) == Tracer.MAX_SPANS
        assert tracer.dropped == 5
        assert tracer.to_json()["dropped"] == 5

    def test_export_sorted_and_capped(self):
        tracer = Tracer()
        for index, start in enumerate([3.0, 1.0, 2.0]):
            tracer.record(
                Span(
                    trace_id=tracer.trace_id,
                    span_id=f"{index:08x}",
                    parent_id=None,
                    name=f"s{index}",
                    origin="pid:1",
                    start=start,
                    wall_seconds=0.0,
                    cpu_seconds=0.0,
                )
            )
        starts = [doc["start"] for doc in tracer.export()]
        assert starts == sorted(starts)
        capped = tracer.to_json(limit=2)
        assert len(capped["spans"]) == 2
        assert capped["dropped"] == 1

    def test_span_json_round_trip(self):
        original = Span(
            trace_id="ab" * 8,
            span_id="cd" * 4,
            parent_id=None,
            name="detect.parse",
            origin="pid:42",
            start=123.456789,
            wall_seconds=0.25,
            cpu_seconds=0.125,
            attrs={"rows": 100},
        )
        assert Span.from_json(original.to_json()) == original

    def test_from_json_raises_on_malformed(self):
        with pytest.raises(ValueError):
            Span.from_json({"trace_id": "x"})


class TestTreeRendering:
    def test_foreign_parent_becomes_root(self):
        tracer = Tracer()
        tracer.record(
            Span(
                trace_id=tracer.trace_id,
                span_id="aa" * 4,
                parent_id="ff" * 4,  # not among the rendered spans
                name="orphan",
                origin="pid:9",
                start=0.0,
                wall_seconds=0.1,
                cpu_seconds=0.1,
            )
        )
        lines = format_span_tree(tracer.spans)
        assert len(lines) == 1
        assert lines[0].startswith("orphan")  # unindented: rendered as a root

    def test_children_indent_under_parents(self):
        tracer = Tracer()
        with activate(tracer):
            with span("service.detect"):
                with span("detect.parse", rows=10):
                    pass
        lines = format_span_tree(tracer.spans)
        assert lines[0].startswith("service.detect")
        assert lines[1].startswith("  detect.parse")
        assert "rows=10" in lines[1]
