"""Histogram bucketing/quantiles and the Prometheus text exposition."""

import threading

import pytest

from repro.service.http.metrics import ServiceMetrics
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricFamily,
    render_prometheus,
)


class TestHistogramBuckets:
    def test_upper_bounds_are_inclusive(self):
        """Prometheus ``le`` semantics: a value exactly on a bound belongs to it."""
        histogram = Histogram((0.1, 0.2, 0.5))
        histogram.observe(0.1)
        histogram.observe(0.2)
        histogram.observe(0.5)
        assert histogram.counts == [1, 1, 1, 0]

    def test_just_above_a_bound_lands_in_the_next_bucket(self):
        histogram = Histogram((0.1, 0.2))
        histogram.observe(0.10000001)
        assert histogram.counts == [0, 1, 0]

    def test_overflow_lands_in_inf_bucket(self):
        histogram = Histogram((0.1, 0.2))
        histogram.observe(99.0)
        assert histogram.counts == [0, 0, 1]

    def test_zero_and_negative_land_in_first_bucket(self):
        histogram = Histogram((0.1,))
        histogram.observe(0.0)
        histogram.observe(-1.0)  # clock jitter must never crash recording
        assert histogram.counts[0] == 2

    def test_cumulative_buckets_are_monotonic_and_end_with_total(self):
        histogram = Histogram((0.1, 0.2, 0.5))
        for value in (0.05, 0.15, 0.15, 0.3, 9.0):
            histogram.observe(value)
        pairs = histogram.cumulative_buckets()
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)
        assert pairs[-1] == (float("inf"), 5)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((0.2, 0.1))
        with pytest.raises(ValueError):
            Histogram((0.1, 0.1))


class TestHistogramQuantiles:
    def test_empty_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_interpolates_within_bucket(self):
        histogram = Histogram((1.0, 2.0))
        for _ in range(4):
            histogram.observe(1.5)  # all in the (1.0, 2.0] bucket
        assert 1.0 <= histogram.quantile(0.5) <= 2.0

    def test_inf_bucket_reports_last_finite_bound(self):
        histogram = Histogram((0.1, 1.0))
        histogram.observe(50.0)
        assert histogram.quantile(0.99) == 1.0

    def test_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_snapshot_shape(self):
        histogram = Histogram()
        histogram.observe(0.003)
        snap = histogram.snapshot()
        assert set(snap) == {"count", "sum_seconds", "p50_seconds", "p95_seconds", "p99_seconds"}
        assert snap["count"] == 1
        assert snap["sum_seconds"] == 0.003


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(
            [
                MetricFamily("x_total", "counter", 'help with "quotes"\nand newline',
                             [({"route": 'a"b'}, 3)]),
                MetricFamily("up", "gauge", "plain", [({}, 1.0)]),
            ]
        )
        assert '# HELP x_total help with "quotes"\\nand newline' in text
        assert "# TYPE x_total counter" in text
        assert 'x_total{route="a\\"b"} 3' in text
        assert "up 1" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        histogram = Histogram((0.1, 0.5))
        histogram.observe(0.05)
        histogram.observe(0.3)
        histogram.observe(7.0)
        text = render_prometheus(
            [MetricFamily("d_seconds", "histogram", "h", [({"route": "r"}, histogram)])]
        )
        assert '# TYPE d_seconds histogram' in text
        assert 'd_seconds_bucket{route="r",le="0.1"} 1' in text
        assert 'd_seconds_bucket{route="r",le="0.5"} 2' in text
        assert 'd_seconds_bucket{route="r",le="+Inf"} 3' in text
        assert 'd_seconds_count{route="r"} 3' in text
        assert 'd_seconds_sum{route="r"}' in text

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MetricFamily("x", "summary", "h", [])


class TestServiceMetricsConcurrency:
    def test_threads_hammering_recorders_while_snapshotting(self):
        """Satellite check: recording and snapshotting race without corruption."""
        metrics = ServiceMetrics()
        iterations = 300
        errors: list[BaseException] = []

        def hammer(which: int) -> None:
            try:
                for index in range(iterations):
                    metrics.record_request(f"route{which}")
                    metrics.record_response(200)
                    metrics.observe_request(f"route{which}", 0.001 * (index % 7))
                    metrics.record_detect("thread", 10, 0.01)
                    metrics.record_protect("process", 5, 0.02)
                    metrics.record_chunk(3, 0.005)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        def reader() -> None:
            try:
                for _ in range(iterations):
                    snap = metrics.snapshot()
                    assert snap["detect"]["rows"] >= 0
                    metrics.prometheus()
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        snap = metrics.snapshot()
        assert snap["requests"] == {f"route{n}": iterations for n in range(4)}
        assert snap["responses"]["200"] == 4 * iterations
        assert snap["detect"]["runners"]["thread"]["calls"] == 4 * iterations
        assert snap["detect"]["rows"] == 4 * iterations * 10
        assert snap["worker_chunks"]["chunks"] == 4 * iterations
        assert snap["latency"]["worker_chunks"]["count"] == 4 * iterations
        for route, histogram in snap["latency"]["requests"].items():
            assert histogram["count"] == iterations, route


class TestServiceMetricsSnapshot:
    def test_all_seconds_fields_share_one_precision(self):
        """Satellite check: every duration in the document is round(., 6)."""
        metrics = ServiceMetrics()
        metrics.record_detect("thread", 100, 0.123456789)
        metrics.record_chunk(10, 0.987654321987)
        snap = metrics.snapshot()

        def walk(node):
            if isinstance(node, dict):
                for key, value in node.items():
                    if isinstance(value, float) and "seconds" in key:
                        assert value == round(value, 6), (key, value)
                    walk(value)

        walk(snap)
        assert snap["detect"]["runners"]["thread"]["seconds"] == 0.123457
        assert snap["worker_chunks"]["seconds"] == 0.987654

    def test_default_buckets_cover_sub_millisecond_to_a_minute(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0

    def test_prometheus_document_parses(self):
        metrics = ServiceMetrics()
        metrics.record_request("detect")
        metrics.observe_request("detect", 0.25)
        text = metrics.prometheus()
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_request_duration_seconds_bucket{route="detect",le="0.25"} 1' in text
        assert 'repro_request_duration_seconds_count{route="detect"} 1' in text
