"""Tests for the keyed tuple selection (Equation 5)."""

import pytest

from repro.watermarking.keys import WatermarkKey
from repro.watermarking.selection import expected_selection_count, is_selected, selected_row_indices


class TestSelection:
    def test_deterministic(self):
        key = WatermarkKey.from_secret("secret", eta=10)
        idents = [f"token-{i}" for i in range(100)]
        assert selected_row_indices(idents, key) == selected_row_indices(idents, key)

    def test_selection_rate_close_to_one_over_eta(self):
        key = WatermarkKey.from_secret("secret", eta=20)
        idents = [f"token-{i}" for i in range(8000)]
        selected = selected_row_indices(idents, key)
        rate = len(selected) / len(idents)
        assert 0.03 < rate < 0.07  # expected 0.05

    def test_eta_one_selects_everything(self):
        key = WatermarkKey.from_secret("secret", eta=1)
        assert all(is_selected(f"t{i}", key) for i in range(50))

    def test_selection_depends_on_key(self):
        idents = [f"token-{i}" for i in range(2000)]
        a = set(selected_row_indices(idents, WatermarkKey.from_secret("a", eta=10)))
        b = set(selected_row_indices(idents, WatermarkKey.from_secret("b", eta=10)))
        assert a != b

    def test_selection_depends_on_eta(self):
        idents = [f"token-{i}" for i in range(4000)]
        few = selected_row_indices(idents, WatermarkKey.from_secret("s", eta=100))
        many = selected_row_indices(idents, WatermarkKey.from_secret("s", eta=10))
        assert len(many) > len(few)

    def test_expected_selection_count(self):
        key = WatermarkKey.from_secret("s", eta=50)
        assert expected_selection_count(1000, key) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            expected_selection_count(-1, key)

    def test_selection_uses_k1_not_k2(self):
        base = WatermarkKey.from_secret("s", eta=10)
        same_k1 = WatermarkKey(base.k1, b"different-k2", 10)
        idents = [f"token-{i}" for i in range(500)]
        assert selected_row_indices(idents, base) == selected_row_indices(idents, same_k1)
