"""Tests for the hierarchical watermarking scheme (Figure 9)."""

import pytest

from repro.attacks.generalization_attack import GeneralizationAttack
from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import Mark, mark_loss, random_mark


@pytest.fixture(scope="module")
def key():
    return WatermarkKey.from_secret("module-test-secret", eta=20)


@pytest.fixture(scope="module")
def mark():
    return random_mark(20, seed="hierarchical-tests")


@pytest.fixture(scope="module")
def embedded(binned_small, key, mark):
    watermarker = HierarchicalWatermarker(key, copies=4)
    return watermarker.embed(binned_small.binned, mark)


class TestEmbedding:
    def test_report_accounting(self, embedded, binned_small):
        assert embedded.tuples_selected > 0
        assert embedded.cells_embedded > 0
        assert embedded.cells_changed <= embedded.cells_embedded
        assert embedded.copies == 4
        assert embedded.wmd_length == 80
        assert set(embedded.columns) == set(binned_small.binned.quasi_columns)

    def test_original_table_not_modified(self, binned_small, key, mark):
        before = binned_small.binned.table.copy()
        HierarchicalWatermarker(key, copies=2).embed(binned_small.binned, mark)
        assert binned_small.binned.table == before

    def test_only_selected_tuples_change(self, embedded, binned_small, key):
        from repro.watermarking.selection import is_selected

        binned = binned_small.binned
        for row_before, row_after in zip(binned.table, embedded.watermarked.table):
            if row_before == row_after:
                continue
            assert is_selected(binned.ident_value(row_before), key)

    def test_identifying_column_never_touched(self, embedded, binned_small):
        before = binned_small.binned.table.column_values("ssn")
        after = embedded.watermarked.table.column_values("ssn")
        assert before == after

    def test_watermarked_values_stay_on_ultimate_frontier(self, embedded, binned_small):
        binned = binned_small.binned
        for column in binned.quasi_columns:
            tree = binned.tree(column)
            allowed = {tree.node(name).value for name in binned.ultimate_nodes[column]}
            assert set(embedded.watermarked.table.column_values(column)) <= allowed

    def test_column_restriction(self, binned_small, key, mark):
        watermarker = HierarchicalWatermarker(key, columns=("symptom",), copies=4)
        report = watermarker.embed(binned_small.binned, mark)
        for column in binned_small.binned.quasi_columns:
            before = binned_small.binned.table.column_values(column)
            after = report.watermarked.table.column_values(column)
            if column == "symptom":
                assert before != after
            else:
                assert before == after

    def test_unknown_column_rejected(self, binned_small, key, mark):
        with pytest.raises(KeyError):
            HierarchicalWatermarker(key, columns=("nope",)).embed(binned_small.binned, mark)

    def test_invalid_copies_rejected(self, key):
        with pytest.raises(ValueError):
            HierarchicalWatermarker(key, copies=0)


class TestDetection:
    def test_clean_detection_recovers_mark_exactly(self, embedded, key, mark):
        detector = HierarchicalWatermarker(key, copies=4)
        report = detector.detect(embedded.watermarked, len(mark))
        assert report.mark == mark
        assert mark_loss(mark, report.mark) == 0.0
        assert report.positions_with_votes > 0
        assert 0.0 < report.coverage <= 1.0

    def test_detection_without_key_fails(self, embedded, mark):
        wrong = HierarchicalWatermarker(WatermarkKey.from_secret("wrong-secret", eta=20), copies=4)
        report = wrong.detect(embedded.watermarked, len(mark))
        # With the wrong key the detector reads essentially random bits.
        assert mark_loss(mark, report.mark) > 0.1

    def test_detection_on_unwatermarked_table_is_noise(self, binned_small, key, mark):
        detector = HierarchicalWatermarker(key, copies=4)
        report = detector.detect(binned_small.binned, len(mark))
        assert mark_loss(mark, report.mark) > 0.1

    def test_detection_survives_generalization_attack(self, embedded, key, mark):
        attacked = GeneralizationAttack(levels=1).run(embedded.watermarked).attacked
        report = HierarchicalWatermarker(key, copies=4).detect(attacked, len(mark))
        assert mark_loss(mark, report.mark) <= 0.1

    def test_mark_length_validation(self, embedded, key):
        with pytest.raises(ValueError):
            HierarchicalWatermarker(key).detect(embedded.watermarked, 0)

    def test_level_weighting_variant_also_recovers(self, binned_small, key, mark):
        watermarker = HierarchicalWatermarker(key, copies=4, level_weighting=True)
        report = watermarker.embed(binned_small.binned, mark)
        detected = watermarker.detect(report.watermarked, len(mark))
        assert detected.mark == mark

    def test_different_copies_still_recover_on_clean_table(self, binned_small, key, mark):
        for copies in (1, 2, 6):
            watermarker = HierarchicalWatermarker(key, copies=copies)
            report = watermarker.embed(binned_small.binned, mark)
            detected = watermarker.detect(report.watermarked, len(mark))
            assert detected.mark == mark, f"copies={copies}"


class TestEncodeParity:
    def test_even_sized_sets(self):
        encode = HierarchicalWatermarker._encode_parity
        assert encode(2, 1, 4) == 3
        assert encode(3, 0, 4) == 2
        assert encode(0, 0, 2) == 0
        assert encode(0, 1, 2) == 1

    def test_odd_sized_sets_step_back(self):
        encode = HierarchicalWatermarker._encode_parity
        # base 2 in a 3-element set, bit 1 -> desired 3 is out of range -> 1.
        assert encode(2, 1, 3) == 1
        assert encode(2, 0, 3) == 2

    def test_singleton_set(self):
        assert HierarchicalWatermarker._encode_parity(0, 1, 1) == 0

    def test_result_always_in_range_with_requested_parity(self):
        encode = HierarchicalWatermarker._encode_parity
        for size in range(2, 9):
            for base in range(size):
                for bit in (0, 1):
                    result = encode(base, bit, size)
                    assert 0 <= result < size
                    assert result % 2 == bit or size == 1
