"""Tests for the pluggable mark-coding layer (repro.watermarking.ecc)."""

import pytest

from repro.watermarking.ecc import (
    CODE_NAMES,
    DEFAULT_LLR_CAP,
    InterleavedBlockCode,
    RepetitionCode,
    SoftRepetitionCode,
    code_from_wire,
    code_to_wire,
    resolve_code,
)
from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import majority_vote, random_mark


def seed_reference_decode(votes, mark_length, copies):
    """The seed detector's two-stage majority decode, transcribed verbatim."""
    wmd_length = mark_length * copies
    wmd_bits = [majority_vote(votes[p]) if p in votes else 0 for p in range(wmd_length)]
    mark_bits = []
    for bit_index in range(mark_length):
        copy_votes = [
            wmd_bits[position]
            for position in range(bit_index, wmd_length, mark_length)
            if position in votes
        ]
        mark_bits.append(majority_vote(copy_votes) if copy_votes else 0)
    return mark_bits, wmd_bits


class TestWireFormat:
    @pytest.mark.parametrize(
        "text",
        [
            "repetition",
            "soft",
            "soft:llr_cap=3",
            "interleaved",
            "interleaved:llr_cap=2,max_iterations=8",
        ],
    )
    def test_roundtrip_is_canonical(self, text):
        assert code_from_wire(text).wire() == text

    def test_defaults_are_omitted(self):
        assert SoftRepetitionCode().wire() == "soft"
        assert SoftRepetitionCode(DEFAULT_LLR_CAP).wire() == "soft"
        assert InterleavedBlockCode(max_iterations=32).wire() == "interleaved"
        assert code_to_wire(SoftRepetitionCode(3.0)) == "soft:llr_cap=3"

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown mark code"):
            code_from_wire("turbo")

    @pytest.mark.parametrize("text", ["soft:nope=1", "soft:llr_cap", "soft:llr_cap=abc"])
    def test_bad_parameters_rejected(self, text):
        with pytest.raises(ValueError):
            code_from_wire(text)

    def test_registry_names(self):
        assert CODE_NAMES == ("interleaved", "repetition", "soft")

    def test_resolve_code(self):
        assert isinstance(resolve_code(None), RepetitionCode)
        code = SoftRepetitionCode(1.5)
        assert resolve_code(code) is code
        assert isinstance(resolve_code("interleaved"), InterleavedBlockCode)
        with pytest.raises(TypeError):
            resolve_code(3)


class TestRepetitionCode:
    def test_encode_is_replication(self):
        bits = [1, 0, 1, 1]
        assert RepetitionCode().encode(bits, 3) == bits * 3

    def test_invalid_copies_rejected(self):
        with pytest.raises(ValueError):
            RepetitionCode().encode([1], 0)

    def test_decode_matches_seed_reference(self):
        # Sparse votes, silent positions, ties and empty-copy bits included.
        votes = {
            0: [1, 1, 0],
            1: [0, 1],  # tie -> 0
            3: [0, 0],
            4: [1],
            6: [1, 1],
            7: [0],
        }
        mark_length, copies = 4, 3
        result = RepetitionCode().decode(votes, mark_length, copies)
        ref_mark, ref_wmd = seed_reference_decode(votes, mark_length, copies)
        assert list(result.mark_bits) == ref_mark
        assert list(result.wmd_bits) == ref_wmd
        assert result.corrected_bits == 0
        assert len(result.bit_confidence) == mark_length
        assert all(0.0 <= c <= 1.0 for c in result.bit_confidence)

    def test_correction_radius(self):
        code = RepetitionCode()
        assert code.correction_radius(20, 1) == 0
        assert code.correction_radius(20, 4) == 1
        assert code.correction_radius(20, 5) == 2


class TestSoftRepetitionCode:
    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            SoftRepetitionCode(0.0)

    def test_soft_overrules_weakly_supported_hard_decision(self):
        # One deep, unanimous position against one shallow dissenter and one
        # tied position.  The hard two-stage vote sees copy bits [1, 0, 0]
        # (the tie casts a biased 0) and decodes 0; soft combining weighs the
        # deep position's margin and decodes 1.
        votes = {0: [1, 1, 1, 1, 1], 1: [0, 1], 2: [0, 0, 1]}
        hard = RepetitionCode().decode(votes, 1, 3)
        soft = SoftRepetitionCode().decode(votes, 1, 3)
        assert hard.mark_bits == (0,)
        assert soft.mark_bits == (1,)
        assert soft.corrected_bits == 1

    def test_no_votes_decode_to_zero_with_zero_confidence(self):
        result = SoftRepetitionCode().decode({}, 3, 4)
        assert result.mark_bits == (0, 0, 0)
        assert result.bit_confidence == (0.0, 0.0, 0.0)
        assert result.corrected_bits == 0

    def test_unanimous_votes_have_full_confidence(self):
        votes = {p: [1, 1, 1] for p in range(6)}
        result = SoftRepetitionCode().decode(votes, 2, 3)
        assert result.mark_bits == (1, 1)
        assert result.bit_confidence == (1.0, 1.0)

    def test_vote_list_order_does_not_matter(self):
        forward = {0: [1, 1, 0, 1], 1: [0, 0, 1], 2: [1, 0]}
        backward = {k: list(reversed(v)) for k, v in forward.items()}
        shuffled = dict(reversed(list(backward.items())))
        for code in (RepetitionCode(), SoftRepetitionCode(), InterleavedBlockCode()):
            assert code.decode(forward, 1, 3) == code.decode(shuffled, 1, 3)


class TestInterleavedBlockCode:
    def test_geometry(self):
        assert InterleavedBlockCode.geometry(20) == (4, 5, 29)
        assert InterleavedBlockCode.geometry(1) == (1, 1, 3)
        with pytest.raises(ValueError):
            InterleavedBlockCode.geometry(0)

    def test_encode_differs_from_replication(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        code = InterleavedBlockCode()
        encoded = code.encode(bits, 4)
        assert len(encoded) == len(bits) * 4
        assert encoded != bits * 4

    def test_clean_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 0, 1, 0, 1, 1]
        code = InterleavedBlockCode()
        copies = 6
        encoded = code.encode(bits, copies)
        votes = {position: [bit] for position, bit in enumerate(encoded)}
        result = code.decode(votes, len(bits), copies)
        assert list(result.mark_bits) == bits
        assert result.corrected_bits == 0

    def test_parity_recovers_an_erased_symbol(self):
        # Wipe out every channel position of one data symbol: the margin for
        # that symbol is 0, the row/column checks fail, and bit-flipping must
        # restore it.
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1]
        code = InterleavedBlockCode()
        copies = 8
        encoded = code.encode(bits, copies)
        _, _, n_cw = code.geometry(len(bits))
        erased_symbol = 4
        votes = {
            position: [bit]
            for position, bit in enumerate(encoded)
            if position % n_cw != erased_symbol
        }
        result = code.decode(votes, len(bits), copies)
        assert list(result.mark_bits) == bits
        assert result.corrected_bits == (1 if bits[erased_symbol] == 1 else 0)

    def test_correction_radius(self):
        code = InterleavedBlockCode()
        # 20 bits -> n_cw 29; 6 copies = 120 channel bits = 4 full codewords.
        assert code.correction_radius(20, 6) == 1
        # Channel shorter than one codeword: no guarantee.
        assert code.correction_radius(20, 1) == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            InterleavedBlockCode(llr_cap=-1.0)
        with pytest.raises(ValueError):
            InterleavedBlockCode(max_iterations=-1)


class TestWatermarkerIntegration:
    @pytest.fixture(scope="class")
    def key(self):
        return WatermarkKey.from_secret("ecc-test-secret", eta=20)

    @pytest.fixture(scope="class")
    def mark(self):
        return random_mark(20, seed="ecc-tests")

    def test_repetition_and_soft_share_votes_and_clean_mark(self, binned_small, key, mark):
        watermarker = HierarchicalWatermarker(key, copies=4)
        embedded = watermarker.embed(binned_small.binned, mark)
        report = watermarker.detect(embedded.watermarked, len(mark))
        assert report.code == "repetition"
        assert report.corrected_bits == 0
        assert len(report.bit_confidence) == len(mark)

        soft = watermarker.with_code("soft")
        assert soft.code_name == "soft"
        soft_report = soft.detect(embedded.watermarked, len(mark))
        assert soft_report.code == "soft"
        assert soft_report.mark == mark

    def test_with_code_shares_engine(self, key):
        watermarker = HierarchicalWatermarker(key, copies=4)
        soft = watermarker.with_code("soft")
        assert soft is not watermarker
        assert soft._engine is watermarker._engine
        assert watermarker.code_name == "repetition"

    def test_interleaved_roundtrip_through_watermarker(self, binned_small, key):
        mark = random_mark(20, seed="ecc-interleaved")
        watermarker = HierarchicalWatermarker(key, copies=6, code="interleaved")
        embedded = watermarker.embed(binned_small.binned, mark)
        report = watermarker.detect(embedded.watermarked, len(mark))
        assert report.code == "interleaved"
        assert report.mark == mark

    def test_shard_merge_order_invariance(self, binned_small, key, mark):
        # Thread and process runners merge shard votes in different orders;
        # the decoded report must not depend on vote-list ordering.
        watermarker = HierarchicalWatermarker(key, copies=4)
        embedded = watermarker.embed(binned_small.binned, mark)
        votes = watermarker.collect_votes(embedded.watermarked, len(mark))
        permuted = type(votes)(wmd_length=votes.wmd_length)
        permuted.tuples_selected = votes.tuples_selected
        permuted.cells_read = votes.cells_read
        permuted.votes_cast = votes.votes_cast
        for position in reversed(sorted(votes.votes)):
            permuted.votes[position] = list(reversed(votes.votes[position]))
        for decoder in (watermarker, watermarker.with_code("soft")):
            original = decoder.finalize_votes(votes, len(mark))
            reordered = decoder.finalize_votes(permuted, len(mark))
            assert original.mark == reordered.mark
            assert original.bit_confidence == reordered.bit_confidence
            assert original.corrected_bits == reordered.corrected_bits
