"""Tests for the watermarking key material."""

import pytest

from repro.watermarking.keys import WatermarkKey


class TestWatermarkKey:
    def test_from_secret_derives_distinct_subkeys(self):
        key = WatermarkKey.from_secret("secret", eta=50)
        assert key.k1 != key.k2
        assert key.eta == 50

    def test_from_secret_is_deterministic(self):
        assert WatermarkKey.from_secret("s", 10) == WatermarkKey.from_secret("s", 10)
        assert WatermarkKey.from_secret("s", 10) != WatermarkKey.from_secret("t", 10)

    def test_with_eta(self):
        key = WatermarkKey.from_secret("secret", eta=50)
        other = key.with_eta(100)
        assert other.eta == 100
        assert other.k1 == key.k1 and other.k2 == key.k2

    def test_validation(self):
        with pytest.raises(ValueError):
            WatermarkKey(b"", b"x", 10)
        with pytest.raises(ValueError):
            WatermarkKey(b"x", b"x", 10)
        with pytest.raises(ValueError):
            WatermarkKey(b"a", b"b", 0)

    def test_accepts_bytes_secret(self):
        key = WatermarkKey.from_secret(b"binary-secret", eta=7)
        assert key.eta == 7
