"""Tests for the single-level baseline scheme (Section 5.2)."""

import pytest

from repro.attacks.generalization_attack import GeneralizationAttack
from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import mark_loss, random_mark
from repro.watermarking.single_level import SingleLevelWatermarker


@pytest.fixture(scope="module")
def key():
    return WatermarkKey.from_secret("single-level-secret", eta=20)


@pytest.fixture(scope="module")
def mark():
    return random_mark(20, seed="single-level-tests")


@pytest.fixture(scope="module")
def embedded(binned_small, key, mark):
    return SingleLevelWatermarker(key, copies=4).embed(binned_small.binned, mark)


class TestSingleLevelScheme:
    def test_clean_detection_recovers_mark(self, embedded, key, mark):
        report = SingleLevelWatermarker(key, copies=4).detect(embedded.watermarked, len(mark))
        assert report.mark == mark

    def test_embedding_respects_ultimate_frontier(self, embedded, binned_small):
        binned = binned_small.binned
        for column in binned.quasi_columns:
            tree = binned.tree(column)
            allowed = {tree.node(name).value for name in binned.ultimate_nodes[column]}
            assert set(embedded.watermarked.table.column_values(column)) <= allowed

    def test_identifying_column_untouched(self, embedded, binned_small):
        assert embedded.watermarked.table.column_values("ssn") == binned_small.binned.table.column_values("ssn")

    def test_generalization_attack_destroys_single_level_but_not_hierarchical(
        self, binned_small, key, mark
    ):
        """The core claim of Section 5.2/5.3, head to head on the same data."""
        single = SingleLevelWatermarker(key, copies=4)
        hierarchical = HierarchicalWatermarker(key, copies=4)
        single_embedded = single.embed(binned_small.binned, mark)
        hier_embedded = hierarchical.embed(binned_small.binned, mark)

        attack = GeneralizationAttack(levels=1)
        single_attacked = attack.run(single_embedded.watermarked).attacked
        hier_attacked = attack.run(hier_embedded.watermarked).attacked

        single_loss = mark_loss(mark, single.detect(single_attacked, len(mark)).mark)
        hier_loss = mark_loss(mark, hierarchical.detect(hier_attacked, len(mark)).mark)
        assert hier_loss <= 0.1
        assert single_loss > hier_loss
        assert single_loss >= 0.2

    def test_report_fields(self, embedded):
        assert embedded.tuples_selected > 0
        assert embedded.cells_embedded > 0
        assert embedded.copies == 4

    def test_mark_length_validation(self, embedded, key):
        with pytest.raises(ValueError):
            SingleLevelWatermarker(key).detect(embedded.watermarked, 0)
