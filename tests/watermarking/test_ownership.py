"""Tests for the rightful-ownership protocol (Section 5.4)."""

import pytest

from repro.watermarking.mark import Mark
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.ownership import (
    DisputeVerdict,
    OwnershipClaim,
    OwnershipRegistry,
    identifier_statistic,
)


class TestIdentifierStatistic:
    def test_mean_of_numeric_identifiers(self):
        assert identifier_statistic(["100", "200", "300"]) == pytest.approx(200.0)

    def test_non_numeric_entries_ignored(self):
        assert identifier_statistic(["100", "garbage", "300"]) == pytest.approx(200.0)

    def test_all_garbage_raises(self):
        with pytest.raises(ValueError):
            identifier_statistic(["x", "y", ""])


class TestRegistryConfiguration:
    def test_validation(self):
        with pytest.raises(ValueError):
            OwnershipRegistry(mark_length=0)
        with pytest.raises(ValueError):
            OwnershipRegistry(tau=0)
        with pytest.raises(ValueError):
            OwnershipRegistry(max_bit_errors=-1)

    def test_derive_mark(self, medium_table):
        registry = OwnershipRegistry(mark_length=20)
        statistic, mark = registry.derive_mark(medium_table.column_values("ssn"))
        assert isinstance(mark, Mark)
        assert len(mark) == 20
        assert statistic > 0
        # Deterministic.
        assert registry.derive_mark(medium_table.column_values("ssn")) == (statistic, mark)

    def test_dispute_requires_claims(self, protected_small):
        with pytest.raises(ValueError):
            OwnershipRegistry().resolve_dispute(protected_small.watermarked, [])


class TestDisputeResolution:
    def test_owner_claim_is_valid_on_own_table(self, protection_framework, protected_small):
        claim = protection_framework.owner_claim("hospital")
        verdict = protection_framework.resolve_dispute(protected_small.watermarked, [claim])
        assert isinstance(verdict, DisputeVerdict)
        assert verdict.valid_claimants == ["hospital"]
        assert verdict.winner == "hospital"
        assessment = verdict.assessments[0]
        assert assessment.decryption_ok and assessment.statistic_ok and assessment.mark_matches
        assert assessment.mark_bit_errors == 0
        assert assessment.recomputed_statistic == pytest.approx(
            protected_small.registered_statistic, abs=1.0
        )

    def test_owner_claim_carries_the_mark_code(self, protection_framework, protected_small):
        claim = protection_framework.owner_claim()
        assert claim.code == "repetition"

    def test_interleaved_protection_wins_its_dispute(self, trees, depth1_metrics, medium_table):
        # Regression: assess_claim used to rebuild its detection watermarker
        # without the claim's code, so interleaved-encoded marks were decoded
        # as repetition and the owner's own claim failed.
        from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
        from repro.framework.pipeline import ProtectionFramework

        framework = ProtectionFramework(
            trees,
            depth1_metrics,
            KAnonymitySpec(k=10, mode=EnforcementMode.MONO, epsilon=5),
            encryption_key="test-encryption-key",
            watermark_secret="test-watermark-secret",
            eta=25,
            mark_length=20,
            copies=6,
            code="interleaved",
        )
        protected = framework.protect(medium_table)
        claim = framework.owner_claim()
        assert claim.code == "interleaved"
        verdict = framework.resolve_dispute(protected.watermarked, [claim])
        assert verdict.winner == "owner"
        assert verdict.assessments[0].mark_bit_errors == 0

    def test_claim_with_wrong_encryption_key_fails(self, protection_framework, protected_small):
        owner = protection_framework.owner_claim("hospital")
        impostor = OwnershipClaim(
            claimant="impostor",
            registered_statistic=owner.registered_statistic,
            mark=owner.mark,
            watermark_key=owner.watermark_key,
            encryption_key="not-the-owner-key",
            copies=owner.copies,
        )
        verdict = protection_framework.resolve_dispute(protected_small.watermarked, [impostor])
        assert verdict.winner is None
        assessment = verdict.assessments[0]
        assert not (assessment.decryption_ok and assessment.statistic_ok)

    def test_claim_with_wrong_watermark_key_fails(self, protection_framework, protected_small):
        owner = protection_framework.owner_claim("hospital")
        impostor = OwnershipClaim(
            claimant="impostor",
            registered_statistic=owner.registered_statistic,
            mark=owner.mark,
            watermark_key=WatermarkKey.from_secret("some-other-secret", 25),
            encryption_key=owner.encryption_key,
            copies=owner.copies,
        )
        verdict = protection_framework.resolve_dispute(protected_small.watermarked, [impostor])
        assert "impostor" not in verdict.valid_claimants

    def test_claim_with_fabricated_statistic_fails(self, protection_framework, protected_small):
        owner = protection_framework.owner_claim("hospital")
        fabricated = OwnershipClaim(
            claimant="fabricator",
            registered_statistic=owner.registered_statistic + 1e9,
            mark=Mark.from_statistic(owner.registered_statistic + 1e9, 20, precision=1e6),
            watermark_key=owner.watermark_key,
            encryption_key=owner.encryption_key,
            copies=owner.copies,
        )
        verdict = protection_framework.resolve_dispute(protected_small.watermarked, [fabricated])
        assert "fabricator" not in verdict.valid_claimants

    def test_winner_none_when_two_claims_valid(self, protection_framework, protected_small):
        owner = protection_framework.owner_claim("hospital")
        duplicate = OwnershipClaim(
            claimant="hospital-twin",
            registered_statistic=owner.registered_statistic,
            mark=owner.mark,
            watermark_key=owner.watermark_key,
            encryption_key=owner.encryption_key,
            copies=owner.copies,
        )
        verdict = protection_framework.resolve_dispute(protected_small.watermarked, [owner, duplicate])
        assert set(verdict.valid_claimants) == {"hospital", "hospital-twin"}
        assert verdict.winner is None
