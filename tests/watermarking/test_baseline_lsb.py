"""Tests for the Agrawal–Kiernan style LSB baseline."""

import pytest

from repro.watermarking.baseline_lsb import LSBWatermarker
from repro.watermarking.keys import WatermarkKey


@pytest.fixture()
def key():
    return WatermarkKey.from_secret("lsb-secret", eta=5)


@pytest.fixture()
def marker(key):
    return LSBWatermarker(key, columns=("age",), ident_column="ssn", xi=2)


class TestLSBWatermarker:
    def test_embedding_changes_only_low_bits(self, small_table, marker):
        marked = marker.embed(small_table)
        changed = 0
        for before, after in zip(small_table, marked):
            if before["age"] != after["age"]:
                changed += 1
                assert abs(before["age"] - after["age"]) <= 3  # only the 2 LSBs move
        assert changed > 0

    def test_detection_on_marked_table(self, small_table, marker):
        marked = marker.embed(small_table)
        report = marker.detect(marked)
        assert report.total_checked > 0
        assert report.match_rate == 1.0
        assert report.mark_present

    def test_detection_on_unmarked_table_is_chance(self, small_table, marker):
        report = marker.detect(small_table)
        assert report.total_checked > 0
        assert report.match_rate < 0.8
        assert not report.mark_present

    def test_lsb_flip_attack_destroys_the_mark(self, small_table, marker):
        marked = marker.embed(small_table)
        flipped = marked.copy()
        for row in flipped:
            row["age"] = row["age"] ^ 1
        report = marker.detect(flipped)
        assert report.match_rate < 0.8
        assert not report.mark_present

    def test_non_integer_cells_skipped(self, small_table, marker):
        marked = marker.embed(small_table)
        broken = marked.copy()
        for row in broken:
            row["age"] = float(row["age"])
        report = marker.detect(broken)
        assert report.total_checked == 0
        assert not report.mark_present
        assert report.match_rate == 0.0

    def test_validation(self, key):
        with pytest.raises(ValueError):
            LSBWatermarker(key, columns=(), ident_column="ssn")
        with pytest.raises(ValueError):
            LSBWatermarker(key, columns=("age",), ident_column="ssn", xi=0)
        with pytest.raises(ValueError):
            LSBWatermarker(key, columns=("age",), ident_column="ssn", threshold=0.4)

    def test_original_table_untouched(self, small_table, marker):
        before = small_table.copy()
        marker.embed(small_table)
        assert small_table == before
