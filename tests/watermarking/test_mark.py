"""Tests for marks, replication, majority voting and mark loss."""

import pytest

import itertools

from repro.watermarking.mark import (
    Mark,
    bits_to_string,
    majority_vote,
    mark_loss,
    random_mark,
    replicate_mark,
    string_to_bits,
    vote_margin,
)


class TestMark:
    def test_construction_and_access(self):
        mark = Mark.from_bits([1, 0, 1, 1])
        assert len(mark) == 4
        assert mark[0] == 1 and mark[1] == 0
        assert list(mark) == [1, 0, 1, 1]
        assert str(mark) == "1011"

    def test_from_string_roundtrip(self):
        mark = Mark.from_string("10110")
        assert mark.bits == (1, 0, 1, 1, 0)
        with pytest.raises(ValueError):
            Mark.from_string("10a")
        with pytest.raises(ValueError):
            Mark.from_string("")

    def test_validation(self):
        with pytest.raises(ValueError):
            Mark.from_bits([])
        with pytest.raises(ValueError):
            Mark(bits=(0, 2))

    def test_from_statistic_stable_under_quantisation(self):
        a = Mark.from_statistic(5.5e8, 20, precision=1e6)
        b = Mark.from_statistic(5.5e8 + 1e5, 20, precision=1e6)
        c = Mark.from_statistic(9.1e8, 20, precision=1e6)
        assert a == b
        assert a != c
        assert len(a) == 20

    def test_from_label_deterministic(self):
        assert Mark.from_label("owner-a") == Mark.from_label("owner-a")
        assert Mark.from_label("owner-a") != Mark.from_label("owner-b")

    def test_hamming_and_loss(self):
        a = Mark.from_string("1111")
        b = Mark.from_string("1010")
        assert a.hamming_distance(b) == 2
        assert a.loss_against(b) == 0.5
        assert mark_loss(a, b) == 0.5
        with pytest.raises(ValueError):
            a.hamming_distance(Mark.from_string("10"))

    def test_random_mark_reproducible(self):
        assert random_mark(20, seed=1) == random_mark(20, seed=1)
        assert random_mark(20, seed=1) != random_mark(20, seed=2)
        assert len(random_mark(31)) == 31


class TestReplication:
    def test_replicate(self):
        mark = Mark.from_string("101")
        assert replicate_mark(mark, 3) == [1, 0, 1] * 3
        assert replicate_mark([1, 1], 2) == [1, 1, 1, 1]

    def test_replicate_validation(self):
        with pytest.raises(ValueError):
            replicate_mark(Mark.from_string("1"), 0)


class TestMajorityVote:
    def test_simple_majority(self):
        assert majority_vote([1, 1, 0]) == 1
        assert majority_vote([0, 0, 1]) == 0

    def test_tie_resolution(self):
        assert majority_vote([0, 1]) == 0
        assert majority_vote([0, 1], tie_value=1) == 1
        assert majority_vote([], tie_value=1) == 1

    def test_weighted(self):
        # One heavy vote outweighs two light ones (the "higher level is more
        # reliable" policy of Section 5.3).
        assert majority_vote([0, 0, 1], weights=[1.0, 1.0, 5.0]) == 1
        assert majority_vote([1, 0], weights=[0.0, 1.0]) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            majority_vote([2])
        with pytest.raises(ValueError):
            majority_vote([1, 0], weights=[1.0])
        with pytest.raises(ValueError):
            majority_vote([1], weights=[-1.0])

    def test_weighted_exact_tie_is_order_independent(self):
        # Regression: both sides carry the weight multiset {0.1, 0.2, 0.3},
        # whose left-to-right float accumulation depends on ordering —
        # 0.1 + 0.2 + 0.3 - 0.3 - 0.2 - 0.1 != 0.0 summed naively.  Thread
        # and process runners merge shard votes in different list orders, so
        # an exact weighted tie must resolve to tie_value for EVERY ordering.
        pairs = [(1, 0.1), (1, 0.2), (1, 0.3), (0, 0.3), (0, 0.2), (0, 0.1)]
        for permutation in itertools.permutations(pairs):
            votes = [vote for vote, _ in permutation]
            weights = [weight for _, weight in permutation]
            assert vote_margin(votes, weights=weights) == 0.0
            assert majority_vote(votes, weights=weights, tie_value=0) == 0
            assert majority_vote(votes, weights=weights, tie_value=1) == 1

    def test_weighted_margin_is_permutation_invariant(self):
        pairs = [(1, 0.7), (0, 0.1), (1, 0.25), (0, 0.3), (1, 0.05), (0, 0.15)]
        margins = {
            vote_margin([v for v, _ in p], weights=[w for _, w in p])
            for p in itertools.permutations(pairs)
        }
        assert len(margins) == 1
        decisions = {
            majority_vote([v for v, _ in p], weights=[w for _, w in p])
            for p in itertools.permutations(pairs)
        }
        assert len(decisions) == 1

    def test_unweighted_margin(self):
        assert vote_margin([1, 1, 0]) == 1.0
        assert vote_margin([0, 0, 1, 1]) == 0.0
        assert vote_margin([]) == 0.0


class TestBitStrings:
    def test_roundtrip(self):
        assert string_to_bits(bits_to_string([1, 0, 1])) == [1, 0, 1]

    def test_invalid_characters(self):
        with pytest.raises(ValueError):
            string_to_bits("012")
