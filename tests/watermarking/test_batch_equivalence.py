"""Golden end-to-end equivalence: batched pipeline vs the seed scalar path.

``batch=True`` (the default) must produce **bit-identical** watermarked
tables, detection reports and LSB marks compared to ``batch=False``, which
reproduces the seed implementation's per-call hashing and deep copies — under
clean detection and after every attack.
"""

from __future__ import annotations

import pytest

from repro.attacks.addition import SubsetAdditionAttack
from repro.attacks.alteration import SubsetAlterationAttack
from repro.attacks.deletion import DeletionMode, SubsetDeletionAttack
from repro.attacks.generalization_attack import GeneralizationAttack
from repro.watermarking.baseline_lsb import LSBWatermarker
from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import random_mark
from repro.watermarking.single_level import SingleLevelWatermarker

MARK = random_mark(20, seed="batch-equivalence")
KEY = WatermarkKey.from_secret("batch-equivalence-secret", eta=10)


def _pair(cls):
    return (
        cls(KEY, copies=3, batch=True),
        cls(KEY, copies=3, batch=False),
    )


def _assert_embeddings_equal(batched, scalar):
    assert batched.watermarked.table == scalar.watermarked.table
    assert batched.tuples_selected == scalar.tuples_selected
    assert batched.cells_embedded == scalar.cells_embedded
    assert batched.cells_changed == scalar.cells_changed
    assert batched.cells_skipped_no_bandwidth == scalar.cells_skipped_no_bandwidth


def _assert_detections_equal(batched, scalar):
    assert batched.mark.bits == scalar.mark.bits
    assert batched.wmd_bits == scalar.wmd_bits
    assert batched.positions_with_votes == scalar.positions_with_votes
    assert batched.tuples_selected == scalar.tuples_selected
    assert batched.cells_read == scalar.cells_read
    assert batched.votes_cast == scalar.votes_cast


@pytest.mark.parametrize("scheme", [HierarchicalWatermarker, SingleLevelWatermarker])
class TestGoldenEmbedDetect:
    def test_embed_is_bit_identical(self, binned_small, scheme):
        batched_wm, scalar_wm = _pair(scheme)
        _assert_embeddings_equal(
            batched_wm.embed(binned_small.binned, MARK),
            scalar_wm.embed(binned_small.binned, MARK),
        )

    def test_clean_detection_is_bit_identical(self, binned_small, scheme):
        batched_wm, scalar_wm = _pair(scheme)
        watermarked = batched_wm.embed(binned_small.binned, MARK).watermarked
        _assert_detections_equal(
            batched_wm.detect(watermarked, len(MARK)),
            scalar_wm.detect(watermarked, len(MARK)),
        )

    @pytest.mark.parametrize(
        "attack",
        [
            SubsetAlterationAttack(0.4, seed=5),
            SubsetAdditionAttack(0.4, seed=5),
            SubsetDeletionAttack(0.4, seed=5, mode=DeletionMode.RANDOM),
            GeneralizationAttack(levels=1),
        ],
        ids=["alteration", "addition", "deletion", "generalization"],
    )
    def test_detection_after_attack_is_bit_identical(self, binned_small, scheme, attack):
        batched_wm, scalar_wm = _pair(scheme)
        watermarked = batched_wm.embed(binned_small.binned, MARK).watermarked
        attacked = attack.run(watermarked).attacked
        _assert_detections_equal(
            batched_wm.detect(attacked, len(MARK)),
            scalar_wm.detect(attacked, len(MARK)),
        )

    def test_embedding_leaves_the_source_untouched(self, binned_small, scheme):
        batched_wm, _ = _pair(scheme)
        before = binned_small.binned.table.copy()
        embedding = batched_wm.embed(binned_small.binned, MARK)
        assert binned_small.binned.table == before
        # And mutating the watermarked copy does not leak back either.
        embedding.watermarked.table.mutable_row(0)["symptom"] = "poisoned"
        assert binned_small.binned.table == before


class TestGoldenLSB:
    def _pair(self):
        key = WatermarkKey.from_secret("lsb-equivalence", eta=4)
        kwargs = dict(columns=("age",), ident_column="ssn", xi=2)
        return LSBWatermarker(key, batch=True, **kwargs), LSBWatermarker(key, batch=False, **kwargs)

    def test_embed_and_detect_are_bit_identical(self, medium_table):
        batched_wm, scalar_wm = self._pair()
        batched_marked = batched_wm.embed(medium_table)
        scalar_marked = scalar_wm.embed(medium_table)
        assert batched_marked == scalar_marked
        batched_report = batched_wm.detect(batched_marked)
        scalar_report = scalar_wm.detect(scalar_marked)
        assert batched_report.total_checked == scalar_report.total_checked
        assert batched_report.matches == scalar_report.matches

    def test_embed_leaves_the_source_untouched(self, medium_table):
        batched_wm, _ = self._pair()
        before = medium_table.copy()
        marked = batched_wm.embed(medium_table)
        assert medium_table == before
        marked.mutable_row(0)["age"] = -1
        assert medium_table == before
