"""Tests for the atomic file-backed key vault."""

import json
import os

import pytest

from repro.service.vault import DatasetRecord, KeyVault, TenantRecord, VaultError


class TestVaultLifecycle:
    def test_init_creates_document(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        assert os.path.exists(vault.path)
        assert vault.tenants() == []

    def test_init_twice_fails(self, tmp_path):
        KeyVault.init(tmp_path / "v")
        with pytest.raises(VaultError, match="already initialised"):
            KeyVault.init(tmp_path / "v")

    def test_open_missing_fails(self, tmp_path):
        with pytest.raises(VaultError, match="no vault"):
            KeyVault(tmp_path / "missing")

    def test_open_or_init(self, tmp_path):
        first = KeyVault.open_or_init(tmp_path / "v")
        first.register_tenant("acme")
        second = KeyVault.open_or_init(tmp_path / "v")
        assert second.tenants() == ["acme"]

    def test_unsupported_version_rejected(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        with open(vault.path, "w", encoding="utf-8") as handle:
            json.dump({"version": 99, "tenants": {}}, handle)
        with pytest.raises(VaultError, match="version"):
            KeyVault(tmp_path / "v")


class TestTenants:
    def test_secrets_generated_when_absent(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        record = vault.register_tenant("acme")
        assert len(record.encryption_key) == 32 and len(record.watermark_secret) == 32
        other = vault.register_tenant("globex")
        assert other.encryption_key != record.encryption_key
        assert other.watermark_secret != record.watermark_secret

    def test_explicit_secrets_and_params_round_trip(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant(
            "acme",
            encryption_key="E",
            watermark_secret="W",
            eta=33,
            k=12,
            epsilon=3,
            mark_length=16,
            copies=6,
            watermark_columns=("age", "zip_code"),
        )
        record = KeyVault(tmp_path / "v").tenant("acme")
        assert record == TenantRecord(
            tenant_id="acme",
            encryption_key="E",
            watermark_secret="W",
            eta=33,
            k=12,
            epsilon=3,
            mark_length=16,
            copies=6,
            watermark_columns=("age", "zip_code"),
        )

    def test_reregistration_rejected(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        with pytest.raises(VaultError, match="already registered"):
            vault.register_tenant("acme")

    def test_unknown_tenant(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        with pytest.raises(VaultError, match="unknown tenant"):
            vault.tenant("nobody")


class TestDatasets:
    def test_record_and_cold_read(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        record = DatasetRecord(
            dataset_id="claims",
            registered_statistic=496540741.525,
            mark_bits="01011010010110100101",
            rows=100_000,
            cells_changed=1234,
            information_loss=0.0291,
            source="/data/claims.csv",
        )
        vault.record_dataset("acme", record)
        # A cold process sees the exact record, float for float.
        reopened = KeyVault(tmp_path / "v")
        assert reopened.dataset("acme", "claims") == record
        assert reopened.datasets("acme") == ["claims"]

    def test_reprotect_overwrites(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        for rows in (10, 20):
            vault.record_dataset(
                "acme",
                DatasetRecord(dataset_id="d", registered_statistic=1.0, mark_bits="01", rows=rows),
            )
        assert vault.dataset("acme", "d").rows == 20

    def test_unknown_dataset(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        with pytest.raises(VaultError, match="no dataset"):
            vault.dataset("acme", "nope")


class TestAtomicity:
    def test_no_tmp_file_left_and_restrictive_mode(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        assert not os.path.exists(vault.path + ".tmp")
        assert (os.stat(vault.path).st_mode & 0o777) == 0o600

    def test_mutations_visible_without_reload_only_after_save(self, tmp_path):
        writer = KeyVault.init(tmp_path / "v")
        reader = KeyVault(tmp_path / "v")
        writer.register_tenant("acme")
        assert "acme" not in reader.tenants()
        reader.reload()
        assert reader.tenants() == ["acme"]
