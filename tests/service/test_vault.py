"""Tests for the atomic file-backed key vault."""

import json
import os

import pytest

from repro.service.backends import BACKEND_ENV, backend_from_env
from repro.service.vault import DatasetRecord, KeyVault, TenantRecord, VaultError

# A handful of tests assert file-document specifics (JSON snapshots,
# hand-edited version fields); they skip under other backends, each with a
# sqlite counterpart in test_backends.py (see tests/service/conftest.py).
_ACTIVE_BACKEND = backend_from_env() or "file"
requires_file_backend = pytest.mark.skipif(
    _ACTIVE_BACKEND != "file",
    reason=f"asserts file-document semantics ({BACKEND_ENV}={_ACTIVE_BACKEND})",
)


class TestVaultLifecycle:
    def test_init_creates_document(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        assert os.path.exists(vault.path)
        assert vault.tenants() == []

    def test_init_twice_fails(self, tmp_path):
        KeyVault.init(tmp_path / "v")
        with pytest.raises(VaultError, match="already initialised"):
            KeyVault.init(tmp_path / "v")

    def test_open_missing_fails(self, tmp_path):
        with pytest.raises(VaultError, match="no vault"):
            KeyVault(tmp_path / "missing")

    def test_open_or_init(self, tmp_path):
        first = KeyVault.open_or_init(tmp_path / "v")
        first.register_tenant("acme")
        second = KeyVault.open_or_init(tmp_path / "v")
        assert second.tenants() == ["acme"]

    @requires_file_backend  # sqlite counterpart: test_backends.py (meta version)
    def test_unsupported_version_rejected(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        with open(vault.path, "w", encoding="utf-8") as handle:
            json.dump({"version": 99, "tenants": {}}, handle)
        with pytest.raises(VaultError, match="version"):
            KeyVault(tmp_path / "v")


class TestTenants:
    def test_secrets_generated_when_absent(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        record = vault.register_tenant("acme")
        assert len(record.encryption_key) == 32 and len(record.watermark_secret) == 32
        other = vault.register_tenant("globex")
        assert other.encryption_key != record.encryption_key
        assert other.watermark_secret != record.watermark_secret

    def test_explicit_secrets_and_params_round_trip(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant(
            "acme",
            encryption_key="E",
            watermark_secret="W",
            eta=33,
            k=12,
            epsilon=3,
            mark_length=16,
            copies=6,
            watermark_columns=("age", "zip_code"),
        )
        record = KeyVault(tmp_path / "v").tenant("acme")
        assert record == TenantRecord(
            tenant_id="acme",
            encryption_key="E",
            watermark_secret="W",
            eta=33,
            k=12,
            epsilon=3,
            mark_length=16,
            copies=6,
            watermark_columns=("age", "zip_code"),
        )

    def test_reregistration_rejected(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        with pytest.raises(VaultError, match="already registered"):
            vault.register_tenant("acme")

    def test_unknown_tenant(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        with pytest.raises(VaultError, match="unknown tenant"):
            vault.tenant("nobody")


class TestDatasets:
    def test_record_and_cold_read(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        record = DatasetRecord(
            dataset_id="claims",
            registered_statistic=496540741.525,
            mark_bits="01011010010110100101",
            rows=100_000,
            cells_changed=1234,
            information_loss=0.0291,
            source="/data/claims.csv",
        )
        vault.record_dataset("acme", record)
        # A cold process sees the exact record, float for float.
        reopened = KeyVault(tmp_path / "v")
        assert reopened.dataset("acme", "claims") == record
        assert reopened.datasets("acme") == ["claims"]

    def test_reprotect_overwrites(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        for rows in (10, 20):
            vault.record_dataset(
                "acme",
                DatasetRecord(dataset_id="d", registered_statistic=1.0, mark_bits="01", rows=rows),
            )
        assert vault.dataset("acme", "d").rows == 20

    def test_unknown_dataset(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        with pytest.raises(VaultError, match="no dataset"):
            vault.dataset("acme", "nope")


class TestAtomicity:
    def test_no_tmp_file_left_and_restrictive_mode(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        assert not os.path.exists(vault.path + ".tmp")
        assert (os.stat(vault.path).st_mode & 0o777) == 0o600

    @requires_file_backend  # sqlite readers are live by design (WAL snapshots)
    def test_mutations_visible_without_reload_only_after_save(self, tmp_path):
        writer = KeyVault.init(tmp_path / "v")
        reader = KeyVault(tmp_path / "v")
        writer.register_tenant("acme")
        assert "acme" not in reader.tenants()
        reader.reload()
        assert reader.tenants() == ["acme"]


class TestBearerTokens:
    def test_issue_and_verify(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        token = vault.issue_token("acme")
        assert vault.has_token("acme")
        assert vault.verify_token("acme", token)
        assert not vault.verify_token("acme", token + "x")
        assert not vault.verify_token("acme", "")

    def test_plaintext_never_stored(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        token = vault.issue_token("acme")
        # Binary read: the backing artifact may be a SQLite database.
        with open(vault.path, "rb") as handle:
            assert token.encode("utf-8") not in handle.read()

    def test_rotation_replaces_digest(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        first = vault.issue_token("acme")
        second = vault.issue_token("acme")
        assert vault.verify_token("acme", second)
        assert not vault.verify_token("acme", first)

    def test_unknown_tenant(self, tmp_path):
        vault = KeyVault.init(tmp_path / "v")
        with pytest.raises(VaultError, match="unknown tenant"):
            vault.issue_token("ghost")
        assert not vault.verify_token("ghost", "anything")
        assert not vault.has_token("ghost")

    def test_cross_process_rotation_visible_without_reload(self, tmp_path):
        """verify_token re-reads on a miss: rotation elsewhere takes effect."""
        vault = KeyVault.init(tmp_path / "v")
        vault.register_tenant("acme")
        stale_view = KeyVault(tmp_path / "v")
        token = vault.issue_token("acme")
        assert stale_view.verify_token("acme", token)


class TestConcurrentWriters:
    """The advisory-lock satellite: racing writers never lose an update."""

    def test_racing_dataset_records_all_survive(self, tmp_path):
        import threading

        root = tmp_path / "v"
        KeyVault.init(root).register_tenant("acme")
        n_writers, per_writer = 4, 8

        def write(index: int) -> None:
            # Each thread opens its *own* vault handle, as two processes would.
            vault = KeyVault(root)
            for step in range(per_writer):
                vault.record_dataset(
                    "acme",
                    DatasetRecord(
                        dataset_id=f"d-{index}-{step}",
                        registered_statistic=1.0,
                        mark_bits="1010",
                    ),
                )

        threads = [threading.Thread(target=write, args=(index,)) for index in range(n_writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(KeyVault(root).datasets("acme")) == n_writers * per_writer

    def test_racing_tenant_registrations_do_not_clobber(self, tmp_path):
        import threading

        root = tmp_path / "v"
        KeyVault.init(root)
        errors: list[Exception] = []

        def register(index: int) -> None:
            try:
                KeyVault(root).register_tenant(f"tenant-{index}")
            except Exception as error:  # pragma: no cover - would fail the assert
                errors.append(error)

        threads = [threading.Thread(target=register, args=(index,)) for index in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert KeyVault(root).tenants() == [f"tenant-{index}" for index in range(6)]

    def test_duplicate_registration_still_rejected_under_lock(self, tmp_path):
        root = tmp_path / "v"
        vault = KeyVault.init(root)
        vault.register_tenant("acme")
        with pytest.raises(VaultError, match="already registered"):
            KeyVault(root).register_tenant("acme")

    def test_racing_claim_stores_merge(self, tmp_path):
        import threading

        from repro.service.store import ClaimStore
        from repro.watermarking.keys import WatermarkKey
        from repro.watermarking.mark import Mark
        from repro.watermarking.ownership import OwnershipClaim

        path = tmp_path / "claims.json"

        def claim_for(name: str) -> OwnershipClaim:
            return OwnershipClaim(
                claimant=name,
                registered_statistic=42.0,
                mark=Mark.from_string("1010"),
                watermark_key=WatermarkKey(k1=b"k1", k2=b"k2", eta=5),
                encryption_key="enc",
                copies=2,
                columns=None,
            )

        def add(index: int) -> None:
            ClaimStore(path).add_claim("dataset", claim_for(f"claimant-{index}"))

        threads = [threading.Thread(target=add, args=(index,)) for index in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(ClaimStore(path).claimants("dataset")) == [
            f"claimant-{index}" for index in range(8)
        ]


class TestCrossProcessFreshness:
    """A long-lived handle sees writes from other handles (stat-gated reload)."""

    def test_dataset_written_elsewhere_is_visible(self, tmp_path):
        root = tmp_path / "v"
        server_view = KeyVault.init(root)
        server_view.register_tenant("acme")
        other = KeyVault(root)
        other.record_dataset(
            "acme",
            DatasetRecord(dataset_id="d", registered_statistic=1.0, mark_bits="1010"),
        )
        assert server_view.dataset("acme", "d").mark_bits == "1010"

    def test_tenant_registered_elsewhere_is_visible(self, tmp_path):
        root = tmp_path / "v"
        server_view = KeyVault.init(root)
        KeyVault(root).register_tenant("late")
        assert server_view.tenant("late").tenant_id == "late"

    def test_unchanged_file_is_not_reparsed(self, tmp_path):
        root = tmp_path / "v"
        vault = KeyVault.init(root)
        vault.register_tenant("acme")
        assert vault.reload_if_changed() is False
        with pytest.raises(VaultError, match="no dataset"):
            vault.dataset("acme", "ghost")

    def test_claims_written_elsewhere_visible_to_reader(self, tmp_path):
        from repro.service.store import ClaimStore
        from repro.watermarking.keys import WatermarkKey
        from repro.watermarking.mark import Mark
        from repro.watermarking.ownership import OwnershipClaim

        path = tmp_path / "claims.json"
        reader = ClaimStore(path)
        ClaimStore(path).add_claim(
            "d",
            OwnershipClaim(
                claimant="owner",
                registered_statistic=1.0,
                mark=Mark.from_string("1010"),
                watermark_key=WatermarkKey(k1=b"a", k2=b"b", eta=5),
                encryption_key="enc",
                copies=2,
                columns=None,
            ),
        )
        assert reader.claimants("d") == ["owner"]
