"""Service-suite configuration: the registry backend under test.

The whole service/HTTP suite runs unmodified against either registry
backend — CI's ``registry-smoke`` job sets ``REPRO_VAULT_BACKEND=sqlite``
and re-runs it, which is the backend-matrix acceptance gate.  A handful of
tests assert *file-format* specifics (JSON document snapshots, hand-edited
version fields); those carry a ``requires_file_backend`` skip marker
(defined where used — this directory is not a package) and each has a
sqlite counterpart in ``test_backends.py``.
"""

from repro.service.backends import backend_from_env

#: The backend the suite is exercising (what fresh vaults will be created as).
ACTIVE_BACKEND = backend_from_env() or "file"
