"""Tests for the persistent claim store (dispute re-hydration)."""

import pytest

from repro.service.store import ClaimStore, claim_from_json, claim_to_json
from repro.watermarking.keys import WatermarkKey
from repro.watermarking.mark import Mark
from repro.watermarking.ownership import OwnershipClaim


def _claim(claimant="owner", encryption_key="enc-secret", code=None):
    return OwnershipClaim(
        claimant=claimant,
        registered_statistic=496540741.525,
        mark=Mark.from_string("01011010010110100101"),
        watermark_key=WatermarkKey.from_secret("wm-secret", eta=25),
        encryption_key=encryption_key,
        copies=4,
        columns=("age", "zip_code"),
        code=code,
    )


class TestClaimSerialisation:
    def test_round_trip_str_key(self):
        claim = _claim()
        assert claim_from_json(claim_to_json(claim)) == claim

    def test_round_trip_bytes_key(self):
        claim = _claim(encryption_key=b"\x00\x01binary\xff")
        back = claim_from_json(claim_to_json(claim))
        assert back == claim and isinstance(back.encryption_key, bytes)

    def test_round_trip_none_columns(self):
        claim = OwnershipClaim(
            claimant="x",
            registered_statistic=1.5,
            mark=Mark.from_string("01"),
            watermark_key=WatermarkKey.from_secret("s", eta=10),
            encryption_key="e",
        )
        assert claim_from_json(claim_to_json(claim)) == claim

    def test_round_trip_mark_code(self):
        claim = _claim(code="interleaved")
        back = claim_from_json(claim_to_json(claim))
        assert back == claim and back.code == "interleaved"

    def test_pre_ecc_payload_defaults_to_the_seed_code(self):
        # Stores written before the coding layer have no "code" key.
        payload = claim_to_json(_claim())
        del payload["code"]
        assert claim_from_json(payload).code is None


class TestClaimStore:
    def test_cold_process_rehydration(self, tmp_path):
        path = tmp_path / "claims.json"
        ClaimStore(path).add_claim("claims-2024", _claim())
        # A fresh store instance re-reads the file and yields equal objects.
        rehydrated = ClaimStore(path).claims("claims-2024")
        assert rehydrated == [_claim()]

    def test_rivals_accumulate_per_dataset(self, tmp_path):
        store = ClaimStore(tmp_path / "claims.json")
        store.add_claim("d", _claim("owner"))
        store.add_claim("d", _claim("mallory", encryption_key="wrong"))
        assert store.claimants("d") == ["owner", "mallory"]
        assert store.datasets() == ["d"]

    def test_same_claimant_replaces(self, tmp_path):
        store = ClaimStore(tmp_path / "claims.json")
        store.add_claim("d", _claim("owner"))
        store.add_claim("d", _claim("owner"))
        assert store.claimants("d") == ["owner"]

    def test_remove_claim(self, tmp_path):
        store = ClaimStore(tmp_path / "claims.json")
        store.add_claim("d", _claim("owner"))
        assert store.remove_claim("d", "owner") is True
        assert store.remove_claim("d", "owner") is False
        assert store.datasets() == []

    def test_empty_dataset_has_no_claims(self, tmp_path):
        assert ClaimStore(tmp_path / "claims.json").claims("nope") == []

    def test_read_only_use_never_writes(self, tmp_path):
        """A store that only reads must not create its file (read-only vaults)."""
        path = tmp_path / "claims.json"
        store = ClaimStore(path)
        store.claims("d")
        store.claimants("d")
        store.datasets()
        assert not path.exists()
        store.add_claim("d", _claim())
        assert path.exists()
