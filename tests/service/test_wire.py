"""The distributed-detection wire format: every round trip is lossless."""

import json

import pytest

from repro.ontology.registry import standard_ontology
from repro.relational.schema import medical_schema
from repro.service.api import _suspect_metadata
from repro.service.runners import WatermarkerSpec
from repro.service.wire import (
    binned_metadata_to_json,
    metadata_from_json,
    metadata_to_json,
    spec_from_json,
    spec_to_json,
    table_to_csv_lines,
    votes_from_json,
    votes_to_json,
)
from repro.watermarking.hierarchical import DetectionVotes, HierarchicalWatermarker


def _through_json(document: dict) -> dict:
    """The document after a real serialize -> bytes -> parse round trip."""
    return json.loads(json.dumps(document))


class TestVotesRoundTrip:
    def test_lossless(self):
        votes = DetectionVotes(
            wmd_length=80,
            votes={3: [1, -1, 1], 79: [-1], 0: [1, 1, 1, -1]},
            tuples_selected=7,
            cells_read=9,
            votes_cast=8,
        )
        assert votes_from_json(_through_json(votes_to_json(votes))) == votes

    def test_empty_votes(self):
        votes = DetectionVotes(wmd_length=40)
        back = votes_from_json(_through_json(votes_to_json(votes)))
        assert back == votes and back.votes == {}

    def test_real_collection_finalises_bit_identically(self, protection_framework, protected_small):
        """Votes collected by a real engine survive the wire and finalise the same."""
        watermarker = HierarchicalWatermarker(protection_framework.watermark_key, copies=4)
        collected = watermarker.collect_votes(protected_small.watermarked, 20)
        back = votes_from_json(_through_json(votes_to_json(collected)))
        assert back == collected
        original = watermarker.finalize_votes(collected, 20)
        rebuilt = watermarker.finalize_votes(back, 20)
        assert original.mark.bits == rebuilt.mark.bits
        assert original.wmd_bits == rebuilt.wmd_bits
        assert original.positions_with_votes == rebuilt.positions_with_votes
        assert original.tuples_selected == rebuilt.tuples_selected
        assert original.cells_read == rebuilt.cells_read
        assert original.votes_cast == rebuilt.votes_cast

    def test_merge_after_round_trip_matches_merge_before(self, protection_framework, protected_small):
        watermarker = HierarchicalWatermarker(protection_framework.watermark_key, copies=4)
        left = watermarker.collect_votes(protected_small.watermarked.slice(0, 700), 20)
        right = watermarker.collect_votes(protected_small.watermarked.slice(700, 1500), 20)
        direct = watermarker.collect_votes(protected_small.watermarked, 20)
        merged = votes_from_json(_through_json(votes_to_json(left))).merge(
            votes_from_json(_through_json(votes_to_json(right)))
        )
        assert merged.votes == direct.votes
        assert merged.tuples_selected == direct.tuples_selected

    def test_malformed_document_is_value_error(self):
        with pytest.raises(ValueError, match="malformed votes"):
            votes_from_json({"wmd_length": 10})


class TestSpecRoundTrip:
    def test_lossless(self, protection_framework):
        watermarker = HierarchicalWatermarker(protection_framework.watermark_key, copies=4)
        spec = WatermarkerSpec.of(watermarker)
        assert spec_from_json(_through_json(spec_to_json(spec))) == spec

    def test_explicit_columns_survive(self, protection_framework):
        watermarker = HierarchicalWatermarker(
            protection_framework.watermark_key, columns=("age", "zip_code"), copies=2
        )
        spec = WatermarkerSpec.of(watermarker)
        back = spec_from_json(_through_json(spec_to_json(spec)))
        assert back == spec and back.columns == ("age", "zip_code")

    def test_rebuilt_engine_is_equivalent(self, protection_framework, protected_small):
        watermarker = HierarchicalWatermarker(protection_framework.watermark_key, copies=4)
        back = spec_from_json(_through_json(spec_to_json(WatermarkerSpec.of(watermarker))))
        original = watermarker.detect(protected_small.watermarked, 20)
        rebuilt = back.build().detect(protected_small.watermarked, 20)
        assert original.mark.bits == rebuilt.mark.bits
        assert original.wmd_bits == rebuilt.wmd_bits

    def test_malformed_document_is_value_error(self):
        with pytest.raises(ValueError, match="malformed watermarker spec"):
            spec_from_json({"k1": "00"})


class TestMetadataRoundTrip:
    def test_suspect_metadata_survives_with_trees_reattached(self, trees):
        schema = medical_schema()
        metadata = _suspect_metadata(trees, schema, k=10, metrics_depth=1)
        payload = _through_json(metadata_to_json(metadata))
        assert "trees" not in payload
        back = metadata_from_json(payload, trees)
        assert back["quasi_columns"] == metadata["quasi_columns"]
        assert back["identifying_columns"] == metadata["identifying_columns"]
        assert back["ultimate_nodes"] == metadata["ultimate_nodes"]
        assert back["maximal_nodes"] == metadata["maximal_nodes"]
        assert back["k"] == metadata["k"]
        assert back["trees"] == {column: trees[column] for column in metadata["quasi_columns"]}

    def test_binned_metadata_matches_suspect_form(self, protected_small, trees):
        payload = _through_json(binned_metadata_to_json(protected_small.watermarked))
        back = metadata_from_json(payload, trees)
        assert back["quasi_columns"] == protected_small.watermarked.quasi_columns
        assert back["ultimate_nodes"] == dict(protected_small.watermarked.ultimate_nodes)
        assert back["k"] == protected_small.watermarked.k

    def test_missing_tree_is_fleet_configuration_error(self):
        ontology = dict(standard_ontology().items())
        metadata = _suspect_metadata(ontology, medical_schema(), k=5, metrics_depth=1)
        payload = metadata_to_json(metadata)
        with pytest.raises(ValueError, match="fleet members must share"):
            metadata_from_json(payload, {"age": ontology["age"]})


class TestTableToCsvLines:
    def test_round_trips_through_the_shared_parser(self, protected_small):
        """Rendered lines parse back cell for cell via the io machinery."""
        import csv
        import itertools

        from repro.relational.io import parse_row
        from repro.relational.table import Table

        table = protected_small.watermarked.table
        header, lines = table_to_csv_lines(table)
        assert len(lines) == len(table)
        schema = table.schema
        rebuilt = Table(schema)
        for raw in csv.DictReader(itertools.chain([header], lines)):
            rebuilt.insert(parse_row(raw, schema))
        assert list(rebuilt.rows) == [
            {name: row[name] for name in schema.column_names} for row in table
        ]
