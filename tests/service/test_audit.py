"""Hash-chained audit log: linkage, service capture, and tamper evidence.

Runs against whichever backend ``REPRO_VAULT_BACKEND`` selects (the CI
backend matrix re-runs it under sqlite), plus backend-explicit corruption
tests.  The acceptance bar from the issue is exercised literally: flipping
a *single byte anywhere* in a file chain makes verification fail with the
exact index of the damaged record, via both the library verifier and the
standalone ``tools/check_audit.py``.
"""

import importlib.util
import json
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.audit import (
    GENESIS_DIGEST,
    AuditChainError,
    FileAuditLog,
    build_record,
    record_digest,
    verify_records,
)
from repro.service.vault import KeyVault

TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"


def load_check_audit():
    spec = importlib.util.spec_from_file_location("check_audit", TOOLS_DIR / "check_audit.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_audit = load_check_audit()


class TestRecordFormat:
    def test_genesis_linkage(self, tmp_path):
        log = FileAuditLog(str(tmp_path / "audit.log"))
        first = log.append("register", "acme")
        assert first["index"] == 0
        assert first["prev"] == GENESIS_DIGEST
        second = log.append("protect", "acme", dataset="d", payload={"rows": 10})
        assert second["prev"] == first["digest"]
        assert log.verify() == 2

    def test_digest_covers_every_field(self, tmp_path):
        record = build_record(0, GENESIS_DIGEST, "register", "acme", None, {})
        for key in ("index", "prev", "ts", "event", "tenant", "dataset", "payload"):
            tampered = dict(record)
            tampered[key] = 7 if key in ("index", "ts") else "tampered"
            assert record_digest(tampered) != record["digest"], key

    def test_verify_records_rejects_reordering(self):
        a = build_record(0, GENESIS_DIGEST, "register", "a", None, {})
        b = build_record(1, a["digest"], "register", "b", None, {})
        assert verify_records([a, b]) == 2
        with pytest.raises(AuditChainError) as excinfo:
            verify_records([b, a])
        assert excinfo.value.index == 0

    def test_append_resumes_after_reopen(self, tmp_path):
        path = str(tmp_path / "audit.log")
        FileAuditLog(path).append("register", "acme")
        reopened = FileAuditLog(path)
        record = reopened.append("token", "acme")
        assert record["index"] == 1
        assert reopened.verify() == 2

    def test_refuses_to_append_to_broken_chain(self, tmp_path):
        path = tmp_path / "audit.log"
        log = FileAuditLog(str(path))
        log.append("register", "acme")
        path.write_text(path.read_text().replace('"acme"', '"evil"'), encoding="utf-8")
        with pytest.raises(AuditChainError):
            FileAuditLog(str(path)).append("token", "acme")


class TestServiceCapture:
    """Every successful service mutation lands exactly one chained record."""

    @pytest.fixture()
    def service_vault(self, tmp_path, raw_table_csv):
        from repro.service.api import ProtectionService

        vault = KeyVault.init(tmp_path / "v")
        service = ProtectionService(vault, chunk_size=256)
        service.register_tenant("owner", k=10, eta=20, epsilon=5)
        out = str(tmp_path / "protected.csv")
        service.protect("owner", raw_table_csv, out, dataset_id="d")
        service.detect("owner", out, dataset_id="d")
        service.dispute("owner", out, dataset_id="d")
        return vault

    @pytest.fixture(scope="class")
    def raw_table_csv(self, tmp_path_factory):
        from repro.datagen.medical import generate_medical_table

        path = tmp_path_factory.mktemp("audit-data") / "raw.csv"
        generate_medical_table(size=1200, seed=7).to_csv(str(path))
        return str(path)

    def test_event_sequence_and_verifiable_chain(self, service_vault):
        log = service_vault.audit_log()
        events = [record["event"] for record in log.entries()]
        assert events == ["register", "protect", "detect", "dispute"]
        assert log.verify() == 4

    def test_payloads_hold_outcomes_not_secrets(self, service_vault):
        records = list(service_vault.audit_log().entries())
        register, protect, detect, dispute = records
        assert register["payload"]["eta"] == 20
        assert protect["payload"]["rows"] == 1200
        assert protect["dataset"] == "d"
        assert detect["payload"]["mark_loss"] == 0.0
        assert dispute["payload"]["winner"] == "owner"
        tenant = service_vault.tenant("owner")
        blob = json.dumps(records)
        assert tenant.encryption_key not in blob
        assert tenant.watermark_secret not in blob

    def test_audit_false_disables_capture(self, tmp_path):
        from repro.service.api import ProtectionService

        vault = KeyVault.init(tmp_path / "v")
        service = ProtectionService(vault, audit=False)
        service.register_tenant("owner")
        assert service.audit is None
        assert vault.audit_log().verify() == 0


def seeded_file_chain(tmp_path, records=6):
    """A vault-shaped dir whose audit.log holds *records* chained entries."""
    root = tmp_path / "chain"
    root.mkdir()
    log = FileAuditLog(str(root / "audit.log"))
    for index in range(records):
        log.append("register", f"tenant-{index}", payload={"step": index})
    return root


def seeded_sqlite_chain(tmp_path, records=6):
    vault = KeyVault.init(tmp_path / "chain-sql", backend="sqlite")
    log = vault.audit_log()
    for index in range(records):
        log.append("register", f"tenant-{index}", payload={"step": index})
    return Path(vault.root)


class TestTamperEvidence:
    def test_every_single_byte_flip_is_detected_with_exact_index(self, tmp_path):
        """The issue's acceptance test: flip each byte of the chain in turn."""
        root = seeded_file_chain(tmp_path, records=4)
        path = root / "audit.log"
        pristine = path.read_bytes()
        # Line offsets tell us which record index a given byte belongs to.
        boundaries = [i for i, b in enumerate(pristine) if b == 0x0A]

        def record_of(offset):
            return next(i for i, end in enumerate(boundaries) if offset <= end)

        log = FileAuditLog(str(path))
        assert log.verify() == 4
        for offset in range(len(pristine)):
            mutated = bytearray(pristine)
            mutated[offset] ^= 0x01
            path.write_bytes(bytes(mutated))
            with pytest.raises(AuditChainError) as excinfo:
                FileAuditLog(str(path)).verify()
            # The reported index never points past the damaged record.
            assert 0 <= excinfo.value.index <= record_of(offset)
        path.write_bytes(pristine)
        assert FileAuditLog(str(path)).verify() == 4

    def test_truncated_partial_record_reports_tail_index(self, tmp_path):
        root = seeded_file_chain(tmp_path, records=5)
        path = root / "audit.log"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 30])  # chop into the last record
        with pytest.raises(AuditChainError) as excinfo:
            FileAuditLog(str(path)).verify()
        assert excinfo.value.index == 4

    def test_deleting_a_middle_record_breaks_at_the_gap(self, tmp_path):
        root = seeded_file_chain(tmp_path, records=5)
        path = root / "audit.log"
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:2] + lines[3:]))
        with pytest.raises(AuditChainError) as excinfo:
            FileAuditLog(str(path)).verify()
        assert excinfo.value.index == 2

    def test_sqlite_row_edit_reports_exact_index(self, tmp_path):
        root = seeded_sqlite_chain(tmp_path, records=6)
        conn = sqlite3.connect(root / "registry.db")
        with conn:
            conn.execute("UPDATE audit SET tenant = 'evil' WHERE idx = 3")
        conn.close()
        with pytest.raises(AuditChainError) as excinfo:
            KeyVault(root).audit_log().verify()
        assert excinfo.value.index == 3

    def test_sqlite_deleted_row_breaks_at_the_gap(self, tmp_path):
        root = seeded_sqlite_chain(tmp_path, records=6)
        conn = sqlite3.connect(root / "registry.db")
        with conn:
            conn.execute("DELETE FROM audit WHERE idx = 2")
        conn.close()
        with pytest.raises(AuditChainError) as excinfo:
            KeyVault(root).audit_log().verify()
        assert excinfo.value.index == 2


class TestCheckAuditTool:
    """tools/check_audit.py — the independent, stdlib-only verifier."""

    def test_ok_on_file_chain(self, tmp_path, capsys):
        root = seeded_file_chain(tmp_path)
        assert check_audit.main([str(root)]) == 0
        assert "audit chain OK: 6 records" in capsys.readouterr().out

    def test_ok_on_sqlite_chain(self, tmp_path, capsys):
        root = seeded_sqlite_chain(tmp_path)
        assert check_audit.main(["--verify", str(root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True and report["records"] == 6
        assert report["backend"] == "sqlite"

    def test_heads_agree_with_library(self, tmp_path, capsys):
        root = seeded_file_chain(tmp_path)
        check_audit.main([str(root), "--json"])
        report = json.loads(capsys.readouterr().out)
        records = list(FileAuditLog(str(root / "audit.log")).entries())
        assert report["head"] == records[-1]["digest"]

    def test_flipped_byte_gives_exit_1_and_exact_index(self, tmp_path, capsys):
        root = seeded_file_chain(tmp_path)
        path = root / "audit.log"
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip one byte inside record 3's digest hex.
        target = bytearray(lines[3])
        pos = target.rindex(b'"digest"') + len(b'"digest":"') + 5
        target[pos] = ord("x") if target[pos] != ord("x") else ord("y")
        lines[3] = bytes(target)
        path.write_bytes(b"".join(lines))
        assert check_audit.main([str(root), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["failed_index"] == 3

    def test_sqlite_edit_gives_exit_1_and_exact_index(self, tmp_path, capsys):
        root = seeded_sqlite_chain(tmp_path)
        conn = sqlite3.connect(root / "registry.db")
        with conn:
            conn.execute("UPDATE audit SET event = 'detect' WHERE idx = 4")
        conn.close()
        assert check_audit.main([str(root), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["failed_index"] == 4

    def test_missing_chain_gives_exit_2(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert check_audit.main([str(tmp_path / "empty"), "--json"]) == 2
        assert "error" in json.loads(capsys.readouterr().out)

    def test_export_writes_canonical_jsonl(self, tmp_path, capsys):
        root = seeded_sqlite_chain(tmp_path)
        exported = tmp_path / "chain.jsonl"
        assert check_audit.main([str(root), "--export", str(exported)]) == 0
        capsys.readouterr()
        # The export itself re-verifies as a file chain.
        lines = exported.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 6
        assert check_audit.main([str(exported)]) == 0

    def test_runs_as_a_subprocess_without_repro_on_path(self, tmp_path):
        """The auditor story: stock python + the script + the chain file."""
        root = seeded_file_chain(tmp_path)
        result = subprocess.run(
            [sys.executable, str(TOOLS_DIR / "check_audit.py"), "--verify", str(root)],
            capture_output=True,
            text=True,
            env={"PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert "audit chain OK" in result.stdout
