"""End-to-end tests for the ProtectionService facade (vault cold starts)."""

import filecmp
import os
import subprocess
import sys

import pytest

import repro
from repro.datagen.medical import generate_medical_table
from repro.relational.io import write_csv_rows
from repro.relational.schema import medical_schema
from repro.service import KeyVault, ProtectionService
from repro.service.vault import VaultError


@pytest.fixture(scope="module")
def raw_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("api") / "claims.csv"
    generate_medical_table(size=1200, seed=31).to_csv(str(path))
    return str(path)


@pytest.fixture(scope="module")
def vault_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("api") / "vault")


@pytest.fixture(scope="module")
def protected(raw_csv, vault_dir, tmp_path_factory):
    """Vault + one protected dataset, built once for the module."""
    vault = KeyVault.init(vault_dir)
    service = ProtectionService(vault)
    service.register_tenant("owner", k=10, eta=20, epsilon=5)
    output = str(tmp_path_factory.mktemp("api") / "protected.csv")
    outcome = service.protect("owner", raw_csv, output, chunk_size=256)
    return outcome


class TestProtect:
    def test_outcome_registered_in_vault(self, protected, vault_dir):
        vault = KeyVault(vault_dir)
        record = vault.dataset("owner", "claims")
        assert record.rows == 1200
        assert record.mark_bits == protected.mark
        assert record.registered_statistic == protected.registered_statistic
        assert ProtectionService(vault).claim_store.claimants("claims") == ["owner"]

    def test_chunk_size_does_not_change_output(self, protected, raw_csv, vault_dir, tmp_path):
        """Streaming is invisible: any chunking emits byte-identical CSVs."""
        other = str(tmp_path / "rechunked.csv")
        # A separate vault so the dataset record of the fixture stays intact.
        rechunk_vault = KeyVault.init(tmp_path / "vault2")
        record = KeyVault(vault_dir).tenant("owner")
        service = ProtectionService(rechunk_vault)
        service.register_tenant(
            "owner",
            encryption_key=record.encryption_key,
            watermark_secret=record.watermark_secret,
            k=record.k,
            eta=record.eta,
            epsilon=record.epsilon,
        )
        service.protect("owner", raw_csv, other, chunk_size=999)
        assert filecmp.cmp(protected.output, other, shallow=False)

    def test_unknown_tenant_rejected(self, vault_dir, raw_csv, tmp_path):
        with pytest.raises(VaultError, match="unknown tenant"):
            ProtectionService(vault_dir).protect("nobody", raw_csv, str(tmp_path / "x.csv"))


class TestColdStartDetect:
    def test_fresh_service_recovers_mark_with_zero_loss(self, protected, vault_dir):
        service = ProtectionService(vault_dir)  # cold: only the vault path
        outcome = service.detect("owner", protected.output, dataset_id="claims", chunk_size=173)
        assert outcome.expected_mark == protected.mark
        assert outcome.mark == protected.mark
        assert outcome.mark_loss == 0.0
        assert outcome.matches is True
        assert outcome.rows == 1200

    def test_shard_parallel_matches_serial(self, protected, vault_dir):
        service = ProtectionService(vault_dir)
        serial = service.detect("owner", protected.output, dataset_id="claims", workers=1)
        parallel = service.detect("owner", protected.output, dataset_id="claims", workers=4)
        assert parallel.mark == serial.mark
        assert parallel.tuples_selected == serial.tuples_selected
        assert parallel.positions_with_votes == serial.positions_with_votes

    def test_unregistered_dataset_reports_mark_only(self, protected, vault_dir):
        outcome = ProtectionService(vault_dir).detect(
            "owner", protected.output, dataset_id="never-protected"
        )
        assert outcome.expected_mark is None and outcome.mark_loss is None
        assert outcome.matches is None

    def test_cold_process_round_trip(self, protected, vault_dir):
        """The acceptance bar, literally: detection from a *new process*."""
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "detect",
                protected.output,
                "--vault",
                vault_dir,
                "--dataset",
                "claims",
                "--workers",
                "2",
                "--json",
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        import json

        payload = json.loads(result.stdout)
        assert payload["mark"] == protected.mark
        assert payload["mark_loss"] == 0.0
        assert payload["ok"] is True


class TestDispute:
    def test_owner_wins_from_rehydrated_claims(self, protected, vault_dir):
        service = ProtectionService(vault_dir)  # cold start
        verdict = service.dispute("owner", protected.output, dataset_id="claims")
        assert verdict.winner == "owner"

    def test_rival_with_wrong_secrets_loses(self, protected, vault_dir, tmp_path, raw_csv):
        # The rival registers their own tenant (wrong secrets) and claims the
        # owner's dataset: classic Attack 1 of Section 5.4.
        service = ProtectionService(vault_dir)
        if "mallory" not in service.vault:
            service.register_tenant("mallory", k=10, eta=20, epsilon=5)
        mallory = service.framework_for("mallory")
        mallory.restore_registration(123456789.0)
        service.register_claim("claims", mallory.owner_claim("mallory"))

        verdict = ProtectionService(vault_dir).dispute("owner", protected.output, dataset_id="claims")
        by_claimant = {assessment.claimant: assessment for assessment in verdict.assessments}
        assert verdict.winner == "owner"
        assert by_claimant["mallory"].valid is False
        assert by_claimant["mallory"].decryption_ok is False or not by_claimant["mallory"].statistic_ok

    def test_dispute_without_claims_fails(self, vault_dir, protected):
        with pytest.raises(VaultError, match="no claims"):
            ProtectionService(vault_dir).dispute("owner", protected.output, dataset_id="ghost")


class TestStatusAndErrors:
    def test_status_snapshot(self, protected, vault_dir):
        status = ProtectionService(vault_dir).status("owner")
        dataset = status["tenants"]["owner"]["datasets"]["claims"]
        assert dataset["rows"] == 1200
        assert dataset["mark"] == protected.mark
        assert "owner" in dataset["claimants"]

    def test_protect_rejects_non_numeric_identifiers(self, vault_dir, tmp_path):
        from repro.ontology.registry import standard_ontology

        trees = standard_ontology()
        schema = medical_schema()
        bad = str(tmp_path / "bad.csv")
        write_csv_rows(
            bad,
            schema,
            [
                {
                    "ssn": "not-numeric",
                    "age": 40,
                    "zip_code": trees["zip_code"].leaves()[0].value,
                    "doctor": trees["doctor"].leaves()[0].value,
                    "symptom": trees["symptom"].leaves()[0].value,
                    "prescription": trees["prescription"].leaves()[0].value,
                }
            ],
        )
        with pytest.raises(ValueError, match="no numeric identifiers"):
            ProtectionService(vault_dir).protect("owner", bad, str(tmp_path / "out.csv"))
