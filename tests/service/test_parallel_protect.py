"""Runner-parallel protect (pass 2): byte-identity, degenerate and adversarial cases.

The PR 5 acceptance bar: once pass 1 fixes the binning plan, rewrite + embed
+ emit per chunk on any runner must produce a CSV byte-identical to the
serial streaming path — at 20k rows, over thread and process pools, through
the HTTP frontend, and under an adversarial quoted-newline input that probes
the quote-parity chunker.  The remote runner is detect-only and must be
refused with a :class:`ValueError` at every entry point.
"""

import filecmp
import os

import pytest

from repro.datagen.medical import generate_medical_table
from repro.service import KeyVault, ProtectionService
from repro.service.executor import ShardExecutor
from repro.service.http import HTTPServiceError, ProtectionApp, ServiceClient
from repro.service.http.server import serve_in_thread
from repro.service.runners import RemoteRunner

ROWS_20K = 20_000
CHUNK = 4_096
WORKERS = 4


@pytest.fixture(scope="module")
def big_env(tmp_path_factory):
    """A 20k-row table, a vault/service and the serial protect output."""
    base = tmp_path_factory.mktemp("parallel-protect")
    raw = str(base / "raw.csv")
    generate_medical_table(size=ROWS_20K, seed=2005).to_csv(raw)
    service = ProtectionService(KeyVault.init(str(base / "vault")), chunk_size=CHUNK)
    service.register_tenant("owner", k=20, eta=50, epsilon=5)
    # Small-k tenant for the sub-1k degenerate/adversarial tables (the 20k
    # tenant's k+epsilon=25 is not satisfiable at a few hundred rows).
    service.register_tenant("smallk", k=2, eta=20, epsilon=1)
    serial = str(base / "serial.csv")
    outcome = service.protect("owner", raw, serial, dataset_id="big", workers=1)
    assert outcome.runner == "thread" and outcome.workers == 1
    assert outcome.chunks == -(-ROWS_20K // CHUNK)
    return {"base": str(base), "raw": raw, "service": service, "serial": serial}


class TestByteIdentityAt20k:
    @pytest.mark.parametrize("runner", ["thread", "process"])
    def test_parallel_matches_serial_bytes_and_counters(self, big_env, runner, tmp_path):
        service = big_env["service"]
        out = str(tmp_path / f"{runner}.csv")
        outcome = service.protect(
            "owner", big_env["raw"], out, dataset_id="big", workers=WORKERS, runner=runner
        )
        assert outcome.runner == runner and outcome.workers == WORKERS
        assert outcome.rows == ROWS_20K
        assert len(outcome.chunk_seconds) == outcome.chunks > 1
        assert all(seconds > 0.0 for seconds in outcome.chunk_seconds)
        assert filecmp.cmp(big_env["serial"], out, shallow=False)

    def test_detect_recovers_mark_from_parallel_output(self, big_env, tmp_path):
        service = big_env["service"]
        out = str(tmp_path / "process.csv")
        service.protect(
            "owner", big_env["raw"], out, dataset_id="big", workers=WORKERS, runner="process"
        )
        detected = service.detect("owner", out, dataset_id="big", workers=2)
        assert detected.mark_loss == 0.0


class TestDegenerateCases:
    def test_single_chunk_input(self, big_env, tmp_path):
        """Fewer rows than one chunk: one work item, still byte-identical."""
        service = big_env["service"]
        small_raw = str(tmp_path / "small.csv")
        generate_medical_table(size=600, seed=9).to_csv(small_raw)
        serial = str(tmp_path / "serial.csv")
        parallel = str(tmp_path / "parallel.csv")
        a = service.protect("smallk", small_raw, serial, dataset_id="small", workers=1)
        b = service.protect(
            "smallk", small_raw, parallel, dataset_id="small", workers=WORKERS, runner="process"
        )
        assert a.chunks == b.chunks == 1
        assert filecmp.cmp(serial, parallel, shallow=False)

    @pytest.mark.parametrize("runner", ["thread", "process"])
    def test_empty_table_raises_like_serial(self, big_env, runner, tmp_path):
        """A header-only CSV fails in pass 1 (no statistic), never in pass 2."""
        service = big_env["service"]
        empty = str(tmp_path / "empty.csv")
        with open(empty, "w", encoding="utf-8") as handle:
            handle.write("ssn,age,zip_code,doctor,symptom,prescription\n")
        with pytest.raises(ValueError, match="no numeric identifiers"):
            service.protect(
                "owner", empty, str(tmp_path / "out.csv"), dataset_id="empty",
                workers=WORKERS, runner=runner,
            )

    def test_pass2_emits_header_for_empty_input(self, big_env, tmp_path):
        """The executor half alone: an empty chunk stream still writes a header."""
        from repro.relational.schema import medical_schema
        from repro.service.runners import ProtectPlan, WatermarkerSpec

        service = big_env["service"]
        framework = service.framework_for("owner")
        empty = str(tmp_path / "empty.csv")
        schema = medical_schema()
        with open(empty, "w", encoding="utf-8") as handle:
            handle.write(",".join(schema.column_names) + "\n")
        out = str(tmp_path / "out.csv")
        plan = ProtectPlan(
            spec=WatermarkerSpec.of(framework.watermarker()),
            schema=schema,
            metadata={},  # never consulted: no chunks reach a worker
            identifying_columns=("ssn",),
            encryption_key=framework.encryption_key,
            mark_bits="1010",
        )
        run = ShardExecutor(2).protect_csv(plan, empty, out, chunk_size=CHUNK)
        assert run.rows == run.chunks == 0
        with open(out, newline="", encoding="utf-8") as handle:
            assert handle.read() == ",".join(schema.column_names) + "\r\n"


class TestAdversarialQuotedNewlines:
    def test_quoted_newline_identifiers_chunk_safely(self, big_env, tmp_path):
        """Quoted newlines in cells must not be split by the protect chunker.

        The ssn column is attacker-ish free text to the chunker (it is
        encrypted, not parsed), so records whose physical lines outnumber
        their logical rows probe exactly the quote-parity deferral — with a
        chunk size small enough that naive line counting would cut
        mid-record.
        """
        import csv as _csv

        service = big_env["service"]
        table = generate_medical_table(size=600, seed=13)
        rows = [dict(row) for row in table.rows]
        for index, row in enumerate(rows):
            if index % 3 == 0:
                row["ssn"] = f"{row['ssn']}\nline-{index}"
        adversarial = str(tmp_path / "adversarial.csv")
        with open(adversarial, "w", newline="", encoding="utf-8") as handle:
            writer = _csv.DictWriter(handle, fieldnames=table.schema.column_names)
            writer.writeheader()
            writer.writerows(rows)

        serial = str(tmp_path / "serial.csv")
        parallel = str(tmp_path / "parallel.csv")
        a = service.protect(
            "smallk", adversarial, serial, dataset_id="adv", workers=1, chunk_size=25
        )
        b = service.protect(
            "smallk", adversarial, parallel, dataset_id="adv",
            workers=WORKERS, runner="process", chunk_size=25,
        )
        assert a.rows == b.rows == 600
        assert b.chunks > 1
        assert filecmp.cmp(serial, parallel, shallow=False)


class TestRemoteRunnerRefused:
    def test_service_rejects_remote_instance_without_stray_output(self, big_env, tmp_path):
        service = big_env["service"]
        out = str(tmp_path / "out.csv")
        with pytest.raises(ValueError, match="detect-only"):
            service.protect(
                "owner", big_env["raw"], out, dataset_id="big",
                runner=RemoteRunner(["http://127.0.0.1:9"]),
            )
        # The refusal happens before the RowWriter opens: no header-only file.
        assert not os.path.exists(out)

    def test_remote_default_coordinator_falls_back_for_protect(self, big_env, tmp_path):
        """A detect-fleet coordinator still protects (locally), like pre-PR."""
        from repro.service import KeyVault, ProtectionService

        coordinator = ProtectionService(
            KeyVault(os.path.join(big_env["base"], "vault")),
            runner=RemoteRunner(["http://127.0.0.1:9"]),
            chunk_size=CHUNK,
        )
        small_raw = str(tmp_path / "small.csv")
        generate_medical_table(size=600, seed=9).to_csv(small_raw)
        out = str(tmp_path / "out.csv")
        outcome = coordinator.protect("smallk", small_raw, out, dataset_id="coord")
        assert outcome.runner == "thread" and outcome.rows == 600

    def test_cli_rejects_remote_with_error_json(self, big_env, tmp_path, capsys):
        from repro.cli import main

        vault = os.path.join(big_env["base"], "vault")
        code = main(
            [
                "protect", big_env["raw"], str(tmp_path / "out.csv"),
                "--vault", vault, "--dataset", "big", "--runner", "remote", "--json",
            ]
        )
        captured = capsys.readouterr()
        import json

        assert code == 2
        assert "detect-only" in json.loads(captured.out)["error"]


class TestProtectOverHTTPRunners:
    def test_http_process_protect_byte_identical_and_metered(self, big_env, tmp_path):
        service = big_env["service"]
        app = ProtectionApp(service)
        server, url = serve_in_thread(app)
        try:
            token = service.vault.issue_token("owner")
            client = ServiceClient(url, token)
            out = str(tmp_path / "http-process.csv")
            report = client.protect(
                "owner", "big", big_env["raw"], out, workers=2, runner="process"
            )
            assert report["runner"] == "process" and report["workers"] == 2
            assert filecmp.cmp(big_env["serial"], out, shallow=False)
            snapshot = client.metrics()
            runners = snapshot["protect"]["runners"]
            assert runners["process"]["calls"] == 1
            assert runners["process"]["rows"] == ROWS_20K
            assert snapshot["protect"]["rows"] == ROWS_20K
            with pytest.raises(HTTPServiceError) as excinfo:
                client.protect("owner", "big", big_env["raw"], out, runner="remote")
            assert excinfo.value.status == 400
            assert "detect-only" in str(excinfo.value)
        finally:
            server.shutdown()
            server.server_close()
