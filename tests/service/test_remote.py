"""Distributed detection: a RemoteRunner fleet is bit-identical to serial.

The acceptance bar of the distributed ISSUE: a coordinator detecting over a
2-worker in-process fleet (real sockets, real ``repro serve`` apps) must
produce exactly the verdict a thread-runner detect produces — on a clean and
an attacked 20k-row table — plus failover, auth, empty-fleet/dead-fleet
error paths and the ``/metrics`` observability surface.
"""

import csv
import os
import socket

import pytest

from repro.datagen.medical import generate_medical_table
from repro.service import (
    FleetError,
    KeyVault,
    ProtectionService,
    RemoteRunner,
    ShardExecutor,
    resolve_runner,
)
from repro.service.http import HTTPServiceError, ProtectionApp, ServiceClient
from repro.service.http.server import serve_in_thread


def _dead_url() -> str:
    """A URL nothing listens on (bind an ephemeral port, then release it)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return f"http://127.0.0.1:{port}"


def _outcomes_equal(left, right) -> bool:
    return (
        left.mark == right.mark
        and left.rows == right.rows
        and left.tuples_selected == right.tuples_selected
        and left.positions_with_votes == right.positions_with_votes
        and left.coverage == right.coverage
        and left.mark_loss == right.mark_loss
    )


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """A protecting coordinator plus two live workers; the 20k acceptance env.

    Workers run over their *own* fresh vaults — distributed detection never
    reads a worker's vault, the chunk requests carry everything — which is
    itself part of what this suite asserts.
    """
    base = tmp_path_factory.mktemp("remote")
    raw = str(base / "raw.csv")
    protected = str(base / "protected.csv")
    generate_medical_table(size=20_000, seed=2005).to_csv(raw)
    vault_dir = str(base / "vault")
    service = ProtectionService(KeyVault.init(vault_dir), chunk_size=5_000)
    service.register_tenant("owner", k=20, eta=50)
    service.protect("owner", raw, protected, dataset_id="big")

    servers, urls = [], []
    for name in ("w1", "w2"):
        worker = ProtectionService(KeyVault.init(str(base / name)))
        server, url = serve_in_thread(ProtectionApp(worker))
        servers.append(server)
        urls.append(url)
    yield {
        "base": str(base),
        "vault": vault_dir,
        "service": service,
        "protected": protected,
        "urls": urls,
    }
    for server in servers:
        server.shutdown()
        server.server_close()


@pytest.fixture(scope="module")
def attacked_csv(fleet):
    """The protected table after a CSV-level alteration + deletion attack."""
    path = os.path.join(fleet["base"], "attacked.csv")
    with open(fleet["protected"], newline="", encoding="utf-8") as handle:
        rows = list(csv.reader(handle))
    kept = [rows[0]]
    for index, row in enumerate(rows[1:]):
        if index % 10 < 3:  # subset deletion: drop 30%
            continue
        if index % 7 == 0:  # subset alteration: stomp a watermark column
            row[3] = "Dr-Stomped"
        kept.append(row)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        csv.writer(handle).writerows(kept)
    return path


class TestFleetBitIdentity:
    """The ISSUE acceptance: 2 live workers == thread runner, bit for bit, at 20k."""

    def test_clean_20k(self, fleet):
        service = fleet["service"]
        thread = service.detect("owner", fleet["protected"], dataset_id="big", workers=4)
        remote = service.detect(
            "owner",
            fleet["protected"],
            dataset_id="big",
            workers=4,
            runner=RemoteRunner(fleet["urls"]),
        )
        assert _outcomes_equal(remote, thread)
        assert remote.rows == 20_000
        assert remote.runner == "remote" and thread.runner == "thread"
        assert remote.mark_loss == 0.0

    def test_attacked_20k(self, fleet, attacked_csv):
        service = fleet["service"]
        thread = service.detect("owner", attacked_csv, dataset_id="big", workers=4)
        remote = service.detect(
            "owner",
            attacked_csv,
            dataset_id="big",
            workers=4,
            runner=RemoteRunner(fleet["urls"]),
        )
        assert _outcomes_equal(remote, thread)
        assert remote.rows == 14_000

    def test_in_memory_executor_path(self, fleet, protection_framework, protected_small):
        """collect_tables: in-memory shards reach the fleet as rendered CSV."""
        from repro.watermarking.hierarchical import HierarchicalWatermarker

        watermarker = HierarchicalWatermarker(protection_framework.watermark_key, copies=4)
        binned = protected_small.watermarked
        serial = watermarker.detect(binned, 20)
        remote = ShardExecutor(2, runner=RemoteRunner(fleet["urls"])).detect(
            watermarker, binned, 20, shards=4
        )
        assert serial.mark.bits == remote.mark.bits
        assert serial.wmd_bits == remote.wmd_bits
        assert serial.tuples_selected == remote.tuples_selected
        assert serial.cells_read == remote.cells_read
        assert serial.votes_cast == remote.votes_cast


class TestFailover:
    def test_dead_worker_in_fleet_is_survived(self, fleet):
        service = fleet["service"]
        thread = service.detect("owner", fleet["protected"], dataset_id="big", workers=2)
        limping = RemoteRunner([_dead_url(), *fleet["urls"]])
        remote = service.detect(
            "owner", fleet["protected"], dataset_id="big", workers=2, runner=limping
        )
        assert _outcomes_equal(remote, thread)

    def test_all_workers_dead_is_fleet_error(self, fleet):
        service = fleet["service"]
        with pytest.raises(FleetError, match="remote worker"):
            service.detect(
                "owner",
                fleet["protected"],
                dataset_id="big",
                runner=RemoteRunner([_dead_url(), _dead_url()]),
            )

    def test_empty_fleet_is_value_error(self):
        with pytest.raises(ValueError, match="at least one worker url"):
            RemoteRunner([])

    def test_malformed_suspect_csv_fails_fast_with_the_parse_error(self, fleet, tmp_path):
        """A data error is a 400 from the worker, not a fleet-wide retry storm."""
        bad = str(tmp_path / "bad.csv")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("ssn,age,zip_code,doctor,symptom,prescription\n")
            handle.write("123,notanage,99501,Dr-A,cough,aspirin\n")
        service = fleet["service"]
        with pytest.raises(HTTPServiceError) as excinfo:
            service.detect(
                "owner", bad, dataset_id="big", runner=RemoteRunner(fleet["urls"])
            )
        assert excinfo.value.status == 400
        assert "parse" in excinfo.value.message

    def test_resolve_runner_rejects_bare_remote_name(self):
        with pytest.raises(ValueError, match="worker fleet"):
            resolve_runner("remote")

    def test_failure_classification_in_fleet_call(self):
        """5xx, corrupt bodies and half-written responses fail over; 4xx is fatal."""
        import http.client

        from repro.service.runners import _FleetCall
        from repro.watermarking.hierarchical import DetectionVotes
        from repro.service.wire import votes_to_json

        ok_response = {"rows": 1, "votes": votes_to_json(DetectionVotes(wmd_length=4))}

        class Stub:
            def __init__(self, error=None):
                self.error = error
                self.calls = 0

            def detect_votes(self, payload, *, headers=None):
                self.calls += 1
                if self.error is not None:
                    raise self.error
                return ok_response

        def fleet(*clients):
            return _FleetCall([(f"http://w{i}", c) for i, c in enumerate(clients)], 2)

        # Half-written response (HTTPException, not OSError) -> next worker.
        sick = Stub(http.client.IncompleteRead(b""))
        healthy = Stub()
        assert fleet(sick, healthy).post(0, {}) == ok_response
        assert sick.calls == 1 and healthy.calls == 1

        # A 200 with a corrupt body is the worker's fault -> fail over too.
        corrupt = Stub(HTTPServiceError(200, "non-JSON response body"))
        healthy = Stub()
        assert fleet(corrupt, healthy).post(0, {}) == ok_response

        # 5xx -> fail over; 4xx -> immediate raise, second worker untouched.
        crashed = Stub(HTTPServiceError(500, "internal error"))
        healthy = Stub()
        assert fleet(crashed, healthy).post(0, {}) == ok_response
        refusing = Stub(HTTPServiceError(403, "wrong token"))
        untouched = Stub()
        with pytest.raises(HTTPServiceError):
            fleet(refusing, untouched).post(0, {})
        assert untouched.calls == 0

        # Everything sick -> FleetError naming the attempts.
        with pytest.raises(FleetError, match="after 2 attempt"):
            fleet(Stub(ConnectionRefusedError()), Stub(HTTPServiceError(502, "bad gateway"))).post(0, {})


class TestFleetAuth:
    """The coordinator->worker hop honours the workers' admin (fleet) token."""

    @pytest.fixture(scope="class")
    def gated(self, tmp_path_factory):
        vault_dir = str(tmp_path_factory.mktemp("gated") / "vault")
        worker = ProtectionService(KeyVault.init(vault_dir))
        server, url = serve_in_thread(ProtectionApp(worker, admin_token="fleet-secret"))
        yield url
        server.shutdown()
        server.server_close()

    def test_missing_fleet_token_is_401_fail_fast(self, fleet, gated):
        service = fleet["service"]
        with pytest.raises(HTTPServiceError) as excinfo:
            service.detect(
                "owner", fleet["protected"], dataset_id="big", runner=RemoteRunner([gated])
            )
        assert excinfo.value.status == 401

    def test_wrong_fleet_token_is_403_fail_fast(self, fleet, gated):
        service = fleet["service"]
        with pytest.raises(HTTPServiceError) as excinfo:
            service.detect(
                "owner",
                fleet["protected"],
                dataset_id="big",
                runner=RemoteRunner([gated], token="wrong"),
            )
        assert excinfo.value.status == 403

    def test_fleet_token_authorises_the_hop(self, fleet, gated):
        service = fleet["service"]
        thread = service.detect("owner", fleet["protected"], dataset_id="big", workers=2)
        remote = service.detect(
            "owner",
            fleet["protected"],
            dataset_id="big",
            workers=2,
            runner=RemoteRunner([gated], token="fleet-secret"),
        )
        assert _outcomes_equal(remote, thread)


class TestWorkerMetrics:
    def test_workers_account_for_served_chunks(self, fleet):
        service = fleet["service"]
        service.detect(
            "owner",
            fleet["protected"],
            dataset_id="big",
            workers=2,
            runner=RemoteRunner(fleet["urls"]),
        )
        snapshots = [ServiceClient(url).metrics() for url in fleet["urls"]]
        total_rows = sum(snapshot["worker_chunks"]["rows"] for snapshot in snapshots)
        total_chunks = sum(snapshot["worker_chunks"]["chunks"] for snapshot in snapshots)
        # Chunks round-robin across the fleet, so 20k rows land in total and
        # every live worker served at least one chunk of this (or an earlier)
        # detect in the module.
        assert total_rows >= 20_000
        assert total_chunks >= 4
        for snapshot in snapshots:
            assert snapshot["requests"]["detect_votes"] >= 1
            assert snapshot["responses"].get("200", 0) >= 1
            assert snapshot["worker_chunks"]["seconds"] > 0.0

    def test_coordinator_serve_reports_remote_runner_timings(self, fleet, tmp_path):
        """A gateway 'repro serve --runner remote' records detects under 'remote'."""
        coordinator = ProtectionService(
            KeyVault(fleet["vault"]),
            executor=ShardExecutor(2, runner=RemoteRunner(fleet["urls"])),
        )
        app = ProtectionApp(coordinator)
        server, url = serve_in_thread(app)
        try:
            token = KeyVault(fleet["vault"]).issue_token("owner")
            client = ServiceClient(url, token)
            payload = client.detect("owner", "big", fleet["protected"])
            assert payload["runner"] == "remote" and payload["mark_loss"] == 0.0
            snapshot = client.metrics()
            runners = snapshot["detect"]["runners"]
            assert runners["remote"]["calls"] == 1
            assert runners["remote"]["rows"] == 20_000
            assert snapshot["detect"]["rows"] == 20_000
        finally:
            server.shutdown()
            server.server_close()
