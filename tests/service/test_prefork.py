"""The pre-fork keep-alive serving layer: protocol conformance and invariants.

What this suite pins down, per the serving-layer ISSUE:

* **keep-alive conformance** — sequential requests on one connection, idle
  timeout closes, max-requests-per-connection recycles, HTTP/1.0 closes;
* **identity invariants** — protect output byte-identical and detect
  reports bit-identical through the new server (the wsgiref suite's
  assertions, re-run against the pre-fork worker);
* **admission control** — a saturated queue sheds with ``503 + Retry-After``
  and counts it, per-tenant token buckets answer ``429``;
* **graceful drain** — ``begin_drain`` (and SIGTERM on the real pre-fork
  server) finishes an in-flight upload before the listener dies;
* **fleet keep-alive** — a RemoteRunner detect posts all its chunks over a
  handful of reused connections (``connections_opened``), bit-identical,
  and a traced run still assembles into one cross-process tree.
"""

import filecmp
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.datagen.medical import generate_medical_table
from repro.service import KeyVault, ProtectionService, RemoteRunner
from repro.service.http import HTTPServiceError, ProtectionApp, ServiceClient
from repro.service.http.prefork import RateLimiter, serve_worker_in_thread
from repro.telemetry.trace import Tracer, activate


# ----------------------------------------------------------------- raw-socket
def _connect(url: str) -> socket.socket:
    host, port = url.split("//", 1)[1].split(":")
    sock = socket.create_connection((host, int(port)), timeout=10)
    sock.settimeout(10)
    return sock


def _send(sock: socket.socket, text: str) -> None:
    sock.sendall(text.encode("latin-1"))


def _read_response(handle) -> tuple[int, dict, bytes]:
    """One HTTP response off a socket file: (status, headers, body)."""
    status_line = handle.readline().decode("latin-1")
    status = int(status_line.split(" ", 2)[1])
    headers: dict[str, str] = {}
    while True:
        line = handle.readline().decode("latin-1")
        if line in ("\r\n", "\n", ""):
            break
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        remaining = int(headers["content-length"])
        while remaining:
            block = handle.read(remaining)
            if not block:
                break
            body += block
            remaining -= len(block)
    elif headers.get("transfer-encoding") == "chunked":
        while True:
            size = int(handle.readline().split(b";", 1)[0].strip() or b"0", 16)
            if size == 0:
                handle.readline()
                break
            body += handle.read(size)
            handle.readline()
    return status, headers, body


# ------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def raw_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("prefork") / "claims.csv"
    generate_medical_table(size=800, seed=41).to_csv(str(path))
    return str(path)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One keep-alive worker over a fresh vault; yields (worker, url, vault_dir, app)."""
    vault_dir = str(tmp_path_factory.mktemp("prefork") / "vault")
    service = ProtectionService(KeyVault.init(vault_dir), chunk_size=256)
    app = ProtectionApp(service)
    worker, url = serve_worker_in_thread(app, metrics=app.metrics)
    yield worker, url, vault_dir, app
    worker.close()


@pytest.fixture(scope="module")
def owner(served):
    _, url, _, _ = served
    payload = ServiceClient(url).register_tenant("owner", k=10, eta=20, epsilon=5)
    assert payload["tenant"] == "owner" and payload["token"]
    return ServiceClient(url, payload["token"]), payload["token"]


@pytest.fixture(scope="module")
def protected_http(served, owner, raw_csv, tmp_path_factory):
    client, _ = owner
    out = str(tmp_path_factory.mktemp("prefork") / "protected.csv")
    report = client.protect("owner", "claims", raw_csv, out)
    return out, report


class TestKeepAliveConformance:
    def test_sequential_requests_share_one_connection(self, served):
        """Three pipelined-sequential requests on one socket, one accept server-side."""
        _, url, _, app = served
        before = app.metrics.snapshot()["server"]["connections"]
        sock = _connect(url)
        handle = sock.makefile("rb")
        try:
            for _ in range(3):
                _send(sock, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                status, headers, body = _read_response(handle)
                assert status == 200
                assert headers["connection"] == "keep-alive"
                assert json.loads(body)["status"] == "ok"
        finally:
            handle.close()
            sock.close()
        after = app.metrics.snapshot()["server"]["connections"]
        assert after == before + 1

    def test_client_pools_connections(self, served):
        _, url, _, _ = served
        client = ServiceClient(url)
        for _ in range(5):
            assert client.health()["status"] == "ok"
            client.metrics()
        assert client.connections_opened == 1
        client.close()

    def test_idle_timeout_closes_connection(self, served):
        _, _, _, app = served
        worker, url = serve_worker_in_thread(app, keepalive_seconds=0.3)
        try:
            sock = _connect(url)
            handle = sock.makefile("rb")
            _send(sock, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            status, _, _ = _read_response(handle)
            assert status == 200
            # Past the idle timeout the server closes: recv sees EOF.
            sock.settimeout(5)
            assert sock.recv(1) == b""
            handle.close()
            sock.close()
        finally:
            worker.close()

    def test_max_requests_per_connection_recycles(self, served):
        _, _, _, app = served
        worker, url = serve_worker_in_thread(app, max_requests_per_connection=2)
        try:
            sock = _connect(url)
            handle = sock.makefile("rb")
            _send(sock, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            _, headers, _ = _read_response(handle)
            assert headers["connection"] == "keep-alive"
            _send(sock, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            _, headers, _ = _read_response(handle)
            assert headers["connection"] == "close"
            assert sock.recv(1) == b""
            handle.close()
            sock.close()
        finally:
            worker.close()

    def test_http10_request_closes(self, served):
        _, url, _, _ = served
        sock = _connect(url)
        handle = sock.makefile("rb")
        _send(sock, "GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
        status, headers, body = _read_response(handle)
        assert status == 200
        assert headers["connection"] == "close"
        assert json.loads(body)["status"] == "ok"
        assert sock.recv(1) == b""
        handle.close()
        sock.close()

    def test_malformed_request_line_answers_400(self, served):
        _, url, _, _ = served
        sock = _connect(url)
        handle = sock.makefile("rb")
        _send(sock, "NONSENSE\r\n\r\n")
        status, _, body = _read_response(handle)
        assert status == 400
        assert "error" in json.loads(body)
        handle.close()
        sock.close()

    def test_unread_small_body_keeps_connection(self, served):
        """The app never reads a 405's body; the server drains it and keeps going."""
        _, url, _, _ = served
        sock = _connect(url)
        handle = sock.makefile("rb")
        _send(sock, "POST /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello bytes")
        status, headers, _ = _read_response(handle)
        assert status == 405
        assert headers["connection"] == "keep-alive"
        _send(sock, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        status, _, _ = _read_response(handle)
        assert status == 200
        handle.close()
        sock.close()


class TestIdentityThroughPrefork:
    def test_protect_byte_identical_to_in_process(
        self, served, protected_http, raw_csv, tmp_path
    ):
        _, _, vault_dir, _ = served
        local_out = str(tmp_path / "local.csv")
        ProtectionService(KeyVault(vault_dir), chunk_size=999).protect(
            "owner", raw_csv, local_out, dataset_id="claims-local"
        )
        http_out, report = protected_http
        assert report["rows"] == 800
        assert filecmp.cmp(http_out, local_out, shallow=False)

    def test_detect_bit_identical_to_in_process(self, served, owner, protected_http):
        client, _ = owner
        _, _, vault_dir, _ = served
        http_out, _ = protected_http
        local = ProtectionService(KeyVault(vault_dir)).detect(
            "owner", http_out, dataset_id="claims"
        )
        payload = client.detect("owner", "claims", http_out, workers=2)
        assert payload["mark"] == local.mark
        assert payload["rows"] == local.rows
        assert payload["tuples_selected"] == local.tuples_selected
        assert payload["positions_with_votes"] == local.positions_with_votes
        assert payload["mark_loss"] == 0.0 and payload["ok"] is True


class TestRateLimit:
    def test_second_request_in_burst_window_answers_429(self, served, owner):
        _, _, _, app = served
        worker, url = serve_worker_in_thread(
            app, rate_limiter=RateLimiter(rate=0.5, burst=1), metrics=app.metrics
        )
        try:
            _, token = owner
            client = ServiceClient(url, token)
            before = app.metrics.snapshot()["server"]["rate_limited"]
            assert client.status("owner")  # first request rides the burst
            status, headers, response = client._request("GET", "/tenants/owner/status")
            body = response.read()
            response.close()
            assert status == 429
            assert "error" in json.loads(body)
            assert int(headers["Retry-After"]) >= 1
            assert app.metrics.snapshot()["server"]["rate_limited"] == before + 1
            client.close()
        finally:
            worker.close()

    def test_healthz_and_metrics_stay_exempt(self, served):
        _, _, _, app = served
        worker, url = serve_worker_in_thread(
            app, rate_limiter=RateLimiter(rate=0.5, burst=1), metrics=app.metrics
        )
        try:
            client = ServiceClient(url, "some-token")
            for _ in range(5):
                assert client.health()["status"] == "ok"
                client.metrics()
            client.close()
        finally:
            worker.close()

    def test_limiter_refills(self):
        limiter = RateLimiter(rate=1000.0, burst=1)
        assert limiter.admit("t") is None
        retry = limiter.admit("t")
        assert retry is not None and retry > 0
        time.sleep(0.01)
        assert limiter.admit("t") is None

    def test_buckets_are_per_token(self):
        limiter = RateLimiter(rate=0.001, burst=1)
        assert limiter.admit("a") is None
        assert limiter.admit("b") is None  # b has its own bucket
        assert limiter.admit("a") is not None


class TestLoadShed:
    def test_saturated_queue_sheds_503_with_retry_after(self, served):
        _, _, _, app = served
        worker, url = serve_worker_in_thread(
            app, handler_threads=1, queue_limit=1, metrics=app.metrics
        )
        try:
            before = app.metrics.snapshot()["server"]["sheds"]
            # Occupy the single handler with a half-sent request...
            busy = _connect(url)
            _send(busy, "GET /healthz HTTP/1.1\r\nHost: x\r\n")  # headers unfinished
            time.sleep(0.3)
            # ...fill the queue's one slot...
            queued = _connect(url)
            time.sleep(0.3)
            # ...and the next arrival sheds.
            shed = _connect(url)
            handle = shed.makefile("rb")
            status, headers, body = _read_response(handle)
            assert status == 503
            assert int(headers["retry-after"]) >= 1
            assert "error" in json.loads(body)
            assert headers["connection"] == "close"
            assert app.metrics.snapshot()["server"]["sheds"] >= before + 1
            handle.close()
            shed.close()
            # Releasing the handler (and closing, so it does not park on
            # keep-alive) lets the queued connection be served.
            _send(busy, "Connection: close\r\n\r\n")
            busy_handle = busy.makefile("rb")
            assert _read_response(busy_handle)[0] == 200
            _send(queued, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            queued_handle = queued.makefile("rb")
            assert _read_response(queued_handle)[0] == 200
            for item in (busy_handle, busy, queued_handle, queued):
                item.close()
        finally:
            worker.close()


class TestGracefulDrain:
    def test_drain_mid_upload_finishes_request(self, served, owner, protected_http):
        """begin_drain() while a detect body is mid-flight: the request completes."""
        _, _, _, app = served
        worker, url = serve_worker_in_thread(app, metrics=app.metrics)
        _, token = owner
        http_out, _ = protected_http
        with open(http_out, "rb") as handle:
            payload = handle.read()
        half = len(payload) // 2
        sock = _connect(url)
        _send(
            sock,
            "POST /tenants/owner/datasets/claims/detect HTTP/1.1\r\n"
            f"Host: x\r\nAuthorization: Bearer {token}\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n",
        )
        sock.sendall(payload[:half])
        # Wait until the worker is actually processing the request (a drain
        # only guarantees *accepted* work finishes; a connection still in the
        # kernel backlog is legitimately reset when the listener closes).
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if any(state.phase == "busy" for state in worker._conns.values()):
                break
            time.sleep(0.01)
        worker.begin_drain()  # what SIGTERM triggers in a pre-fork child
        time.sleep(0.2)
        sock.sendall(payload[half:])
        handle = sock.makefile("rb")
        status, headers, body = _read_response(handle)
        assert status == 200
        assert headers["connection"] == "close"  # draining: no more requests
        assert json.loads(body)["mark_loss"] == 0.0
        handle.close()
        sock.close()
        # The worker is now fully down: new connections are refused.
        worker.close()
        with pytest.raises(OSError):
            _connect(url)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="pre-fork needs POSIX fork")
class TestPreForkProcesses:
    def _serve(self, vault_dir: str, *extra: str) -> tuple[subprocess.Popen, dict]:
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--vault", vault_dir,
             "--port", "0", "--json", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        # --json pretty-prints one document; read until its braces balance.
        buffer, depth = "", 0
        while True:
            char = proc.stdout.read(1)
            if not char:
                raise AssertionError(f"serve died: {proc.stderr.read()}")
            buffer += char
            depth += {"{": 1, "}": -1}.get(char, 0)
            if depth == 0 and buffer.strip():
                return proc, json.loads(buffer)

    def test_prefork_serves_stamps_pids_and_drains_on_sigterm(self, tmp_path):
        vault_dir = str(tmp_path / "vault")
        KeyVault.init(vault_dir)
        proc, info = self._serve(vault_dir, "--processes", "2")
        try:
            assert info["processes"] == 2
            client = ServiceClient(info["url"], keepalive=False)
            assert client.health()["status"] == "ok"
            pids = set()
            for _ in range(12):
                pids.add(client.metrics()["server"]["pid"])
            assert pids and proc.pid not in pids
        finally:
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=20)
        assert code == 0

    def test_sigterm_mid_upload_finishes_request(self, tmp_path, raw_csv):
        """The subprocess drain bar: SIGTERM lands mid-upload, the protect finishes."""
        vault_dir = str(tmp_path / "vault")
        KeyVault.init(vault_dir)
        proc, info = self._serve(vault_dir, "--processes", "1")
        try:
            url = info["url"]
            token = ServiceClient(url).register_tenant(
                "owner", k=10, eta=20, epsilon=5
            )["token"]
            client = ServiceClient(url, token)
            started = threading.Event()
            result: dict = {}

            def slow_upload():
                def body():
                    with open(raw_csv, "rb") as handle:
                        first = True
                        while True:
                            block = handle.read(4096)
                            if not block:
                                return
                            yield block
                            if first:
                                started.set()
                                first = False
                            time.sleep(0.05)

                out = str(tmp_path / "protected.csv")
                try:
                    status, _, response = client._request(
                        "POST", "/tenants/owner/datasets/d/protect", body=body
                    )
                    raw = response.read()
                    response.close()
                    result["status"] = status
                    result["bytes"] = len(raw)
                except Exception as error:  # noqa: BLE001 - report into the main thread
                    result["error"] = error

            uploader = threading.Thread(target=slow_upload)
            uploader.start()
            assert started.wait(timeout=10)
            proc.send_signal(signal.SIGTERM)  # lands mid-upload
            uploader.join(timeout=60)
            code = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert result.get("error") is None, f"upload failed: {result.get('error')!r}"
        assert result["status"] == 200 and result["bytes"] > 0
        assert code == 0


class TestFleetKeepAlive:
    @pytest.fixture(scope="class")
    def fleet(self, tmp_path_factory, raw_csv):
        base = tmp_path_factory.mktemp("prefork-fleet")
        vault_dir = str(base / "vault")
        service = ProtectionService(KeyVault.init(vault_dir), chunk_size=100)
        service.register_tenant("owner", k=10, eta=20, epsilon=5)
        protected = str(base / "protected.csv")
        service.protect("owner", raw_csv, protected, dataset_id="big")
        workers, urls = [], []
        for name in ("w1", "w2"):
            worker_service = ProtectionService(KeyVault.init(str(base / name)))
            app = ProtectionApp(worker_service)
            worker, url = serve_worker_in_thread(app, metrics=app.metrics)
            workers.append(worker)
            urls.append(url)
        yield {"service": service, "protected": protected, "urls": urls}
        for worker in workers:
            worker.close()

    def test_chunk_posts_reuse_connections_bit_identically(self, fleet):
        service = fleet["service"]
        runner = RemoteRunner(fleet["urls"])
        thread = service.detect("owner", fleet["protected"], dataset_id="big", workers=4)
        remote = service.detect(
            "owner", fleet["protected"], dataset_id="big", workers=4, runner=runner
        )
        assert remote.mark == thread.mark
        assert remote.rows == thread.rows == 800
        assert remote.tuples_selected == thread.tuples_selected
        assert remote.positions_with_votes == thread.positions_with_votes
        assert remote.mark_loss == thread.mark_loss
        # 800 rows / chunk_size 100 = 8 chunk POSTs (+ per-chunk retries
        # would only add more); keep-alive means the fleet's TCP connection
        # count stays at the concurrency level, far below the POST count.
        assert runner.connections_opened <= 5

    def test_traced_fleet_detect_assembles_one_tree(self, fleet):
        service = fleet["service"]
        runner = RemoteRunner(fleet["urls"])
        tracer = Tracer()
        with activate(tracer):
            service.detect("owner", fleet["protected"], dataset_id="big", runner=runner)
        spans = tracer.spans
        assert spans
        names = {span.name for span in spans}
        assert "http.client.detect_votes" in names  # the coordinator's hop
        assert "http.request" in names  # the worker's side, shipped back
        ids = {span.span_id for span in spans}
        for span in spans:
            assert span.trace_id == tracer.trace_id
            assert span.parent_id is None or span.parent_id in ids
