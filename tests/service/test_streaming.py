"""Tests for chunked CSV ingest/emit."""

import pytest

from repro.dht.node import Interval
from repro.relational.schema import medical_schema
from repro.service.streaming import RowWriter, iter_rows, iter_tables, write_rows


@pytest.fixture(scope="module")
def raw_csv(tmp_path_factory, small_table):
    path = tmp_path_factory.mktemp("streaming") / "raw.csv"
    small_table.to_csv(str(path))
    return str(path)


class TestChunkedIngest:
    def test_chunks_cover_rows_in_order(self, raw_csv, small_table):
        chunks = list(iter_tables(raw_csv, medical_schema(), chunk_size=64))
        assert [len(chunk) for chunk in chunks[:-1]] == [64] * (len(chunks) - 1)
        assert sum(len(chunk) for chunk in chunks) == len(small_table)
        streamed = [row for chunk in chunks for row in chunk]
        assert streamed == list(small_table.rows)

    def test_exact_multiple_has_no_empty_tail(self, raw_csv):
        chunks = list(iter_tables(raw_csv, medical_schema(), chunk_size=100))
        assert [len(chunk) for chunk in chunks] == [100, 100, 100, 100]

    def test_chunk_size_one_and_huge(self, raw_csv, small_table):
        assert sum(1 for _ in iter_tables(raw_csv, medical_schema(), chunk_size=1)) == len(small_table)
        whole = list(iter_tables(raw_csv, medical_schema(), chunk_size=10**6))
        assert len(whole) == 1 and len(whole[0]) == len(small_table)

    def test_invalid_chunk_size(self, raw_csv):
        with pytest.raises(ValueError):
            next(iter_tables(raw_csv, medical_schema(), chunk_size=0))

    def test_iter_rows_matches_table(self, raw_csv, small_table):
        assert list(iter_rows(raw_csv, medical_schema())) == list(small_table.rows)


class TestEmit:
    def test_row_writer_matches_bulk_writer(self, tmp_path, small_table):
        schema = medical_schema()
        bulk = tmp_path / "bulk.csv"
        incremental = tmp_path / "incremental.csv"
        write_rows(str(bulk), schema, small_table)
        with RowWriter(str(incremental), schema) as writer:
            for chunk_start in range(0, len(small_table), 150):
                for row in small_table.rows[chunk_start : chunk_start + 150]:
                    writer.write_row(row)
        assert writer.rows_written == len(small_table)
        assert incremental.read_bytes() == bulk.read_bytes()

    def test_interval_cells_round_trip_through_emit(self, tmp_path):
        schema = medical_schema()
        row = {
            "ssn": "123456789",
            "age": Interval(25, 30),
            "zip_code": "02139",
            "doctor": "Dr. A",
            "symptom": "Influenza",
            "prescription": "Oseltamivir",
        }
        path = tmp_path / "one.csv"
        write_rows(str(path), schema, [row])
        assert list(iter_rows(str(path), schema)) == [row]


class TestRawChunks:
    def test_raw_chunks_reparse_identically(self, raw_csv, small_table):
        import csv
        import itertools

        from repro.relational.io import parse_row
        from repro.service.streaming import iter_raw_chunks

        schema = medical_schema()
        parsed = []
        for header, lines in iter_raw_chunks(raw_csv, chunk_size=77):
            assert len(lines) <= 77
            for raw in csv.DictReader(itertools.chain([header], lines)):
                parsed.append(parse_row(raw, schema))
        assert parsed == list(small_table.rows)

    def test_empty_file_yields_nothing(self, tmp_path):
        from repro.service.streaming import iter_raw_chunks

        empty = tmp_path / "empty.csv"
        empty.write_text("")
        assert list(iter_raw_chunks(str(empty))) == []
        header_only = tmp_path / "header.csv"
        header_only.write_text("ssn,age\n")
        assert list(iter_raw_chunks(str(header_only))) == []

    def test_invalid_chunk_size(self, raw_csv):
        from repro.service.streaming import iter_raw_chunks

        with pytest.raises(ValueError):
            next(iter_raw_chunks(raw_csv, chunk_size=0))


class TestSpool:
    def test_spools_file_like_and_iterables(self, tmp_path):
        import io

        from repro.service.streaming import spool_stream

        target = tmp_path / "spooled.bin"
        assert spool_stream(io.BytesIO(b"abc" * 1000), str(target)) == 3000
        assert target.read_bytes() == b"abc" * 1000
        assert spool_stream(iter([b"one", b"", b"two"]), str(target)) == 6
        assert target.read_bytes() == b"onetwo"

    def test_max_bytes_enforced(self, tmp_path):
        from repro.service.streaming import spool_stream

        with pytest.raises(ValueError, match="exceeds"):
            spool_stream(iter([b"x" * 10]), str(tmp_path / "capped.bin"), max_bytes=5)


class TestQuotedNewlineChunking:
    def test_boundary_never_splits_a_quoted_record(self, tmp_path):
        import csv
        import itertools

        from repro.service.streaming import iter_raw_chunks

        path = tmp_path / "tricky.csv"
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["id", "name"])
            for index in range(20):
                # Every row's second cell holds a quoted newline, so every
                # record spans two physical lines — any line-count boundary
                # would fall mid-record without the parity guard.
                writer.writerow([index, f"line1\nline2-{index}"])
        expected = list(csv.DictReader(open(path, newline="", encoding="utf-8")))
        parsed = []
        for header, lines in iter_raw_chunks(str(path), chunk_size=3):
            parsed.extend(csv.DictReader(itertools.chain([header], lines)))
        assert parsed == expected
