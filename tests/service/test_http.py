"""The HTTP frontend: streaming round trips, auth, cold restarts, 20k acceptance."""

import filecmp
import json
import os

import pytest

from repro.datagen.medical import generate_medical_table
from repro.service import KeyVault, ProtectionService
from repro.service.http import HTTPServiceError, ProtectionApp, ServiceClient
from repro.service.http.server import serve_in_thread


@pytest.fixture(scope="module")
def raw_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("http") / "claims.csv"
    generate_medical_table(size=800, seed=41).to_csv(str(path))
    return str(path)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A running server over a fresh vault; yields (base_url, vault_dir, server)."""
    vault_dir = str(tmp_path_factory.mktemp("http") / "vault")
    service = ProtectionService(KeyVault.init(vault_dir), chunk_size=256)
    server, url = serve_in_thread(ProtectionApp(service))
    yield url, vault_dir, server
    server.shutdown()
    server.server_close()


@pytest.fixture(scope="module")
def owner(served):
    """The registered owner tenant; yields (client, token)."""
    url, _, _ = served
    payload = ServiceClient(url).register_tenant("owner", k=10, eta=20, epsilon=5)
    assert payload["tenant"] == "owner" and payload["token"]
    return ServiceClient(url, payload["token"]), payload["token"]


@pytest.fixture(scope="module")
def protected_http(served, owner, raw_csv, tmp_path_factory):
    """claims.csv protected over HTTP; yields (output_path, report)."""
    client, _ = owner
    out = str(tmp_path_factory.mktemp("http") / "protected.csv")
    report = client.protect("owner", "claims", raw_csv, out)
    return out, report


class TestProtectOverHTTP:
    def test_report_matches_cli_shape(self, protected_http):
        _, report = protected_http
        assert report["rows"] == 800
        assert set(report["mark"]) <= {"0", "1"}
        for key in ("tenant", "dataset", "registered_statistic", "cells_changed",
                    "tuples_selected", "information_loss", "output"):
            assert key in report

    def test_byte_identical_to_in_process_protect(
        self, served, protected_http, raw_csv, tmp_path
    ):
        """The socket round trip changes nothing: same vault secrets, same bytes."""
        _, vault_dir, _ = served
        local_out = str(tmp_path / "local.csv")
        ProtectionService(KeyVault(vault_dir), chunk_size=999).protect(
            "owner", raw_csv, local_out, dataset_id="claims-local"
        )
        http_out, _ = protected_http
        assert filecmp.cmp(http_out, local_out, shallow=False)

    def test_vault_registered_dataset(self, served, protected_http):
        _, vault_dir, _ = served
        _, report = protected_http
        record = KeyVault(vault_dir).dataset("owner", "claims")
        assert record.rows == 800
        assert record.mark_bits == report["mark"]


class TestDetectOverHTTP:
    def test_bit_identical_to_in_process_detect(self, served, owner, protected_http):
        client, _ = owner
        _, vault_dir, _ = served
        http_out, _ = protected_http
        local = ProtectionService(KeyVault(vault_dir)).detect(
            "owner", http_out, dataset_id="claims"
        )
        for runner in ("thread", "process"):
            payload = client.detect("owner", "claims", http_out, workers=2, runner=runner)
            assert payload["mark"] == local.mark
            assert payload["rows"] == local.rows
            assert payload["tuples_selected"] == local.tuples_selected
            assert payload["positions_with_votes"] == local.positions_with_votes
            assert payload["mark_loss"] == 0.0 and payload["ok"] is True
            assert payload["runner"] == runner

    def test_unregistered_dataset_gives_null_verdict(self, owner, protected_http):
        client, _ = owner
        http_out, _ = protected_http
        payload = client.detect("owner", "never-protected", http_out)
        assert payload["expected_mark"] is None
        assert payload["mark_loss"] is None and payload["ok"] is None

    def test_bad_runner_rejected(self, owner, protected_http):
        client, _ = owner
        http_out, _ = protected_http
        with pytest.raises(HTTPServiceError) as excinfo:
            client.detect("owner", "claims", http_out, runner="gpu")
        assert excinfo.value.status == 400


class TestAuth:
    def test_missing_token_is_401(self, served, protected_http):
        url, _, _ = served
        http_out, _ = protected_http
        with pytest.raises(HTTPServiceError) as excinfo:
            ServiceClient(url).detect("owner", "claims", http_out)
        assert excinfo.value.status == 401

    def test_wrong_token_is_403(self, served, protected_http):
        url, _, _ = served
        http_out, _ = protected_http
        with pytest.raises(HTTPServiceError) as excinfo:
            ServiceClient(url, "not-the-token").detect("owner", "claims", http_out)
        assert excinfo.value.status == 403

    def test_other_tenants_token_is_403(self, served, protected_http):
        url, _, _ = served
        http_out, _ = protected_http
        rival = ServiceClient(url).register_tenant("rival", k=10, eta=20)
        with pytest.raises(HTTPServiceError) as excinfo:
            ServiceClient(url, rival["token"]).status("owner")
        assert excinfo.value.status == 403

    def test_rotating_token_invalidates_old_one(self, served, raw_csv, tmp_path):
        url, vault_dir, _ = served
        old = ServiceClient(url).register_tenant("rotator", k=10, eta=20)["token"]
        new = KeyVault(vault_dir).issue_token("rotator")
        assert ServiceClient(url, new).status("rotator")["tenants"]["rotator"]
        with pytest.raises(HTTPServiceError) as excinfo:
            ServiceClient(url, old).status("rotator")
        assert excinfo.value.status == 403

    def test_admin_gated_registration(self, tmp_path):
        vault_dir = str(tmp_path / "vault")
        service = ProtectionService(KeyVault.init(vault_dir))
        server, url = serve_in_thread(ProtectionApp(service, admin_token="root-secret"))
        try:
            with pytest.raises(HTTPServiceError) as excinfo:
                ServiceClient(url).register_tenant("owner")
            assert excinfo.value.status == 401
            with pytest.raises(HTTPServiceError) as excinfo:
                ServiceClient(url, "wrong").register_tenant("owner")
            assert excinfo.value.status == 403
            payload = ServiceClient(url).register_tenant("owner", admin_token="root-secret")
            assert payload["token"]
            # Vault-wide status is admin-gated too; the admin token also
            # drives tenant endpoints.
            admin = ServiceClient(url, "root-secret")
            assert "owner" in admin.status()["tenants"]
            assert "owner" in admin.status("owner")["tenants"]
        finally:
            server.shutdown()
            server.server_close()


class TestErrors:
    def test_unknown_tenant_is_404(self, served, protected_http):
        url, _, _ = served
        http_out, _ = protected_http
        with pytest.raises(HTTPServiceError) as excinfo:
            ServiceClient(url).register_tenant("owner")  # duplicate
        assert excinfo.value.status == 409
        admin = ServiceClient(url)
        with pytest.raises(HTTPServiceError) as excinfo:
            admin.status("nobody")
        # no token at all -> 401 before the tenant lookup
        assert excinfo.value.status == 401

    def test_error_body_is_uniform_json(self, owner, protected_http):
        client, _ = owner
        http_out, _ = protected_http
        with pytest.raises(HTTPServiceError) as excinfo:
            client.detect("owner", "claims", http_out, runner="gpu")
        assert set(excinfo.value.payload) == {"error"}

    def test_empty_upload_is_400(self, served, owner, tmp_path):
        url, _, _ = served
        client, _ = owner
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(HTTPServiceError) as excinfo:
            client.detect("owner", "claims", str(empty))
        assert excinfo.value.status == 400

    def test_malformed_csv_is_400(self, owner, tmp_path):
        client, _ = owner
        bad = tmp_path / "bad.csv"
        bad.write_text("ssn,age,zip_code,doctor,symptom,prescription\nabc,notanage,x,y,z,w\n")
        with pytest.raises(HTTPServiceError) as excinfo:
            client.protect("owner", "bad", str(bad), str(tmp_path / "out.csv"))
        assert excinfo.value.status == 400
        assert "error" in excinfo.value.payload or excinfo.value.message

    def test_unknown_route_is_404(self, served):
        url, _, _ = served
        with pytest.raises(HTTPServiceError) as excinfo:
            ServiceClient(url)._json_request("GET", "/nope", authenticated=False)
        assert excinfo.value.status == 404


class TestDisputeOverHTTP:
    def test_dispute_wins_against_cold_server_restart(
        self, served, owner, protected_http, raw_csv
    ):
        """Kill the server, start a fresh one on the same vault: the claim holds."""
        _, vault_dir, _ = served
        _, token = owner
        http_out, report = protected_http
        cold_service = ProtectionService(KeyVault(vault_dir))  # fresh frameworks
        cold_server, cold_url = serve_in_thread(ProtectionApp(cold_service))
        try:
            client = ServiceClient(cold_url, token)
            verdict = client.dispute("owner", "claims", http_out)
            assert verdict["winner"] == "owner"
            assert verdict["dataset"] == "claims"
            assessments = {entry["claimant"]: entry for entry in verdict["assessments"]}
            assert assessments["owner"]["valid"] is True
            # And detection from the cold server still matches the registration.
            payload = client.detect("owner", "claims", http_out)
            assert payload["mark"] == report["mark"] and payload["ok"] is True
        finally:
            cold_server.shutdown()
            cold_server.server_close()


class TestPaperScaleAcceptance:
    """The ISSUE bar: >= 20k rows over HTTP, byte/bit-identical, clean + attacked."""

    SIZE = 20_000

    @pytest.fixture(scope="class")
    def big_env(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("http-20k")
        raw = str(base / "big.csv")
        generate_medical_table(size=self.SIZE, seed=2005).to_csv(raw)
        vault_dir = str(base / "vault")
        service = ProtectionService(KeyVault.init(vault_dir), chunk_size=5_000)
        server, url = serve_in_thread(ProtectionApp(service))
        payload = ServiceClient(url).register_tenant("owner", k=20, eta=50)
        yield {
            "base": str(base),
            "raw": raw,
            "vault": vault_dir,
            "url": url,
            "client": ServiceClient(url, payload["token"]),
        }
        server.shutdown()
        server.server_close()

    def test_20k_round_trip_clean_and_attacked(self, big_env, tmp_path):
        client = big_env["client"]
        http_out = os.path.join(big_env["base"], "protected-http.csv")
        report = client.protect("owner", "big", big_env["raw"], http_out)
        assert report["rows"] == self.SIZE

        # Byte-identity: the same protect through the in-process facade.
        local_out = str(tmp_path / "protected-local.csv")
        ProtectionService(KeyVault(big_env["vault"]), chunk_size=7_500).protect(
            "owner", big_env["raw"], local_out, dataset_id="big-local"
        )
        assert filecmp.cmp(http_out, local_out, shallow=False)

        # A subset-deletion attack at the CSV level: drop 30% of the rows.
        attacked = str(tmp_path / "attacked.csv")
        with open(http_out, encoding="utf-8") as src, open(attacked, "w", encoding="utf-8") as dst:
            header = src.readline()
            dst.write(header)
            for index, line in enumerate(src):
                if index % 10 >= 3:
                    dst.write(line)

        local_service = ProtectionService(KeyVault(big_env["vault"]))
        for suspect in (http_out, attacked):
            local = local_service.detect("owner", suspect, dataset_id="big")
            for runner in ("thread", "process"):
                payload = client.detect("owner", "big", suspect, workers=2, runner=runner)
                assert payload["mark"] == local.mark
                assert payload["rows"] == local.rows
                assert payload["tuples_selected"] == local.tuples_selected
                assert payload["positions_with_votes"] == local.positions_with_votes
        # The clean copy must read back with zero loss end to end.
        assert client.detect("owner", "big", http_out)["mark_loss"] == 0.0
