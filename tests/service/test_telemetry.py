"""End-to-end telemetry: identical outputs, assembled traces, scrape surface.

The observability ISSUE's acceptance bar: protect/detect outputs are
byte/bit-identical with tracing on or off across every runner; one traced
detect through a live 2-worker fleet assembles a single trace covering every
named pipeline stage on the coordinator *and* the worker side; and
``/metrics?format=prometheus`` renders a parsable exposition with latency
histograms.
"""

import filecmp
import json
import urllib.request

import pytest

from repro.datagen.medical import generate_medical_table
from repro.service import KeyVault, ProtectionService, RemoteRunner
from repro.service.http import ProtectionApp, ServiceClient
from repro.service.http.app import TRACE_RESPONSE_HEADER
from repro.service.http.server import serve_in_thread
from repro.telemetry.trace import TRACE_HEADER, Tracer, activate

#: Stage spans one traced detect must cover, per the pipeline's named stages.
DETECT_STAGES = {
    "service.detect",
    "detect.parse",
    "detect.frame",
    "detect.collect",
    "detect.merge",
    "detect.finalize",
}

PROTECT_STAGES = {
    "service.protect",
    "protect.pass1",
    "protect.parse",
    "protect.encrypt_generalize",
    "protect.embed",
    "protect.serialize",
    "protect.splice",
}


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    """A protected 4k-row workload over a fresh vault."""
    base = tmp_path_factory.mktemp("telemetry")
    raw = str(base / "raw.csv")
    protected = str(base / "protected.csv")
    generate_medical_table(size=4_000, seed=77).to_csv(raw)
    vault_dir = str(base / "vault")
    service = ProtectionService(KeyVault.init(vault_dir), chunk_size=1_000)
    service.register_tenant("owner", k=20, eta=50)
    service.protect("owner", raw, protected, dataset_id="data")
    return {"base": str(base), "vault": vault_dir, "raw": raw, "protected": protected}


def _detect_key(outcome) -> tuple:
    return (
        str(outcome.mark),
        outcome.rows,
        outcome.tuples_selected,
        outcome.positions_with_votes,
        outcome.coverage,
        outcome.mark_loss,
    )


class TestOutputsUnchangedByTracing:
    """Telemetry must observe the pipeline, never steer it."""

    @pytest.mark.parametrize("runner", ["serial", "thread", "process"])
    def test_protect_bytes_identical(self, env, runner, tmp_path):
        workers = None if runner == "serial" else 2
        runner_name = None if runner == "serial" else runner
        plain_vault = str(tmp_path / "plain")
        traced_vault = str(tmp_path / "traced")
        for vault_dir in (plain_vault, traced_vault):
            service = ProtectionService(KeyVault.init(vault_dir), chunk_size=1_000)
            # Identical explicit secrets: the two vaults must be byte-level
            # twins so any output difference can only come from tracing.
            service.register_tenant(
                "owner", k=20, eta=50, encryption_key="E-seed", watermark_secret="W-seed"
            )
        plain_out = str(tmp_path / "plain.csv")
        traced_out = str(tmp_path / "traced.csv")
        ProtectionService(KeyVault(plain_vault), chunk_size=1_000).protect(
            "owner", env["raw"], plain_out, dataset_id="d", workers=workers, runner=runner_name
        )
        tracer = Tracer()
        with activate(tracer):
            ProtectionService(KeyVault(traced_vault), chunk_size=1_000).protect(
                "owner",
                env["raw"],
                traced_out,
                dataset_id="d",
                workers=workers,
                runner=runner_name,
            )
        assert filecmp.cmp(plain_out, traced_out, shallow=False)
        # The same vault secrets were registered, so identical bytes prove
        # tracing perturbed nothing; the trace itself must still be complete.
        names = {span.name for span in tracer.spans}
        if runner == "serial":
            assert PROTECT_STAGES - {"protect.parse"} <= names
        else:
            assert PROTECT_STAGES <= names

    @pytest.mark.parametrize("runner", ["serial", "thread", "process"])
    def test_detect_bit_identical(self, env, runner):
        service = ProtectionService(KeyVault(env["vault"]), chunk_size=1_000)
        workers = None if runner == "serial" else 2
        runner_name = None if runner == "serial" else runner
        plain = service.detect(
            "owner", env["protected"], dataset_id="data", workers=workers, runner=runner_name
        )
        tracer = Tracer()
        with activate(tracer):
            traced = service.detect(
                "owner", env["protected"], dataset_id="data", workers=workers, runner=runner_name
            )
        assert _detect_key(plain) == _detect_key(traced)
        assert traced.mark_loss == 0.0
        names = {span.name for span in tracer.spans}
        assert DETECT_STAGES <= names

    def test_process_runner_spans_come_from_foreign_pids(self, env):
        """Pool workers are real processes; their spans carry their own origin."""
        service = ProtectionService(KeyVault(env["vault"]), chunk_size=1_000)
        tracer = Tracer()
        with activate(tracer):
            service.detect(
                "owner", env["protected"], dataset_id="data", workers=2, runner="process"
            )
        origins = {span.origin for span in tracer.spans}
        assert len(origins) >= 2, origins
        collect_origins = {s.origin for s in tracer.spans if s.name == "detect.collect"}
        assert tracer.origin not in collect_origins or len(collect_origins) > 1
        assert all(span.trace_id == tracer.trace_id for span in tracer.spans)

    def test_untraced_run_records_nothing(self, env):
        service = ProtectionService(KeyVault(env["vault"]), chunk_size=1_000)
        outcome = service.detect("owner", env["protected"], dataset_id="data")
        assert outcome.rows == 4_000  # and no tracer existed to record into


class TestFleetTrace:
    """One traced detect through two live workers = one assembled trace."""

    @pytest.fixture(scope="class")
    def workers(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("fleetspans")
        servers, urls, apps = [], [], []
        for name in ("w1", "w2"):
            worker = ProtectionService(KeyVault.init(str(base / name)))
            app = ProtectionApp(worker)
            server, url = serve_in_thread(app)
            servers.append(server)
            urls.append(url)
            apps.append(app)
        yield urls, apps
        for server in servers:
            server.shutdown()
            server.server_close()

    def test_trace_covers_coordinator_and_worker_stages(self, env, workers):
        urls, _ = workers
        service = ProtectionService(KeyVault(env["vault"]), chunk_size=1_000)
        tracer = Tracer()
        with activate(tracer):
            traced = service.detect(
                "owner",
                env["protected"],
                dataset_id="data",
                workers=2,
                runner=RemoteRunner(urls),
            )
        assert traced.runner == "remote"
        spans = tracer.spans
        names = {span.name for span in spans}
        # Coordinator side: orchestration + merge/finalize; worker side:
        # parse/frame/collect (shipped back in the detect-votes response
        # body) plus the worker's own http.request span.
        assert DETECT_STAGES <= names
        assert "http.client.detect_votes" in names
        assert "http.request" in names
        assert all(span.trace_id == tracer.trace_id for span in spans)
        # Every chunk hop produced one worker-side collect span.
        hops = [s for s in spans if s.name == "http.client.detect_votes"]
        collects = [s for s in spans if s.name == "detect.collect"]
        assert len(hops) == 4  # 4k rows / 1k chunk size
        assert len(collects) == len(hops)
        # And the result still matches a thread detect bit for bit.
        thread = service.detect("owner", env["protected"], dataset_id="data", workers=2)
        assert _detect_key(traced) == _detect_key(thread)

    def test_untraced_fleet_detect_ships_no_spans(self, env, workers):
        urls, apps = workers
        service = ProtectionService(KeyVault(env["vault"]), chunk_size=1_000)
        outcome = service.detect(
            "owner", env["protected"], dataset_id="data", workers=2, runner=RemoteRunner(urls)
        )
        assert outcome.rows == 4_000


class TestHTTPTraceSurface:
    @pytest.fixture(scope="class")
    def served(self, env):
        service = ProtectionService(KeyVault(env["vault"]), chunk_size=1_000)
        app = ProtectionApp(service)
        server, url = serve_in_thread(app)
        token = KeyVault(env["vault"]).issue_token("owner")
        yield url, app, token
        server.shutdown()
        server.server_close()

    def test_detect_returns_trace_in_header_only(self, env, served):
        url, _, token = served
        client = ServiceClient(url, token)
        plain = client.detect("owner", "data", env["protected"])
        tracer = Tracer()
        with activate(tracer):
            traced = client.detect("owner", "data", env["protected"])
        # The response *body* is identical — the trace rode the header and
        # was ingested into the client's ambient tracer.
        assert plain == traced
        names = {span.name for span in tracer.spans}
        assert "http.client.detect" in names
        assert "http.request" in names
        assert DETECT_STAGES <= names

    def test_protect_round_trip_with_trace(self, env, served, tmp_path):
        url, _, token = served
        client = ServiceClient(url, token)
        out = str(tmp_path / "out.csv")
        tracer = Tracer()
        with activate(tracer):
            report = client.protect("owner", "traced-proto", env["raw"], out)
        assert report["rows"] == 4_000
        names = {span.name for span in tracer.spans}
        assert "http.client.protect" in names
        assert "service.protect" in names

    def test_invalid_trace_header_is_ignored(self, env, served):
        url, _, _ = served
        request = urllib.request.Request(
            f"{url}/healthz", headers={TRACE_HEADER: "NOT-A-TRACE-ID-<script>"}
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            assert TRACE_RESPONSE_HEADER not in dict(response.getheaders())

    def test_prometheus_endpoint(self, served):
        url, _, _ = served
        with urllib.request.urlopen(f"{url}/metrics?format=prometheus", timeout=10) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_request_duration_seconds histogram" in text
        assert 'le="+Inf"' in text

    def test_unknown_metrics_format_is_400(self, served):
        url, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{url}/metrics?format=xml", timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_route_counted(self, served):
        url, app, _ = served
        before = app.metrics.snapshot()["requests"].get("unknown", 0)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{url}/no/such/route", timeout=10)
        assert excinfo.value.code == 404
        snapshot = app.metrics.snapshot()
        assert snapshot["requests"]["unknown"] == before + 1
        # And the 404 shows up in the per-route latency histograms too.
        assert snapshot["latency"]["requests"]["unknown"]["count"] >= before + 1

    def test_request_latency_recorded_per_route(self, served):
        url, app, _ = served
        urllib.request.urlopen(f"{url}/healthz", timeout=10).close()
        snapshot = app.metrics.snapshot()
        health = snapshot["latency"]["requests"]["healthz"]
        assert health["count"] >= 1
        assert health["sum_seconds"] >= 0.0

    def test_json_metrics_remains_default(self, served):
        url, _, _ = served
        with urllib.request.urlopen(f"{url}/metrics", timeout=10) as response:
            document = json.loads(response.read())
        assert "requests" in document and "latency" in document
