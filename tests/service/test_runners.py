"""Pluggable shard runners: thread and process paths bit-identical to serial."""

import os

import pytest

from repro.attacks.alteration import SubsetAlterationAttack
from repro.service.executor import ShardExecutor
from repro.service.runners import (
    ProcessRunner,
    ThreadRunner,
    WatermarkerSpec,
    resolve_runner,
)
from repro.watermarking.hierarchical import HierarchicalWatermarker


def _detection_equal(left, right):
    return (
        left.mark.bits == right.mark.bits
        and left.wmd_bits == right.wmd_bits
        and left.positions_with_votes == right.positions_with_votes
        and left.tuples_selected == right.tuples_selected
        and left.cells_read == right.cells_read
        and left.votes_cast == right.votes_cast
    )


@pytest.fixture(scope="module")
def watermarker(protection_framework):
    return HierarchicalWatermarker(protection_framework.watermark_key, copies=4)


class TestResolveRunner:
    def test_names_and_default(self):
        assert isinstance(resolve_runner(None), ThreadRunner)
        assert isinstance(resolve_runner("thread"), ThreadRunner)
        assert isinstance(resolve_runner("process"), ProcessRunner)

    def test_instance_passthrough(self):
        runner = ProcessRunner()
        assert resolve_runner(runner) is runner

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown runner"):
            resolve_runner("gpu")


class TestWatermarkerSpec:
    def test_roundtrip_rebuilds_equivalent_engine(self, watermarker, protected_small):
        spec = WatermarkerSpec.of(watermarker)
        rebuilt = spec.build()
        assert rebuilt.key == watermarker.key
        assert rebuilt.copies == watermarker.copies
        assert _detection_equal(
            watermarker.detect(protected_small.watermarked, 20),
            rebuilt.detect(protected_small.watermarked, 20),
        )

    def test_spec_is_picklable_and_hashable(self, watermarker):
        import pickle

        spec = WatermarkerSpec.of(watermarker)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, WatermarkerSpec.of(watermarker)}) == 1

    def test_worker_watermarker_cache_is_bounded(self):
        """Long-lived fleet workers must not retain every spec's key material."""
        from repro.service.runners import (
            _WORKER_WATERMARKER_CACHE_SIZE,
            _WORKER_WATERMARKERS,
            _worker_watermarker,
        )
        from repro.watermarking.keys import WatermarkKey

        before = dict(_WORKER_WATERMARKERS)
        try:
            _WORKER_WATERMARKERS.clear()
            specs = [
                WatermarkerSpec(
                    k1=bytes([index]) * 16,
                    k2=bytes([index + 1]) * 16,
                    eta=25,
                    columns=None,
                    copies=4,
                    level_weighting=True,
                    batch=True,
                )
                for index in range(_WORKER_WATERMARKER_CACHE_SIZE + 5)
            ]
            for spec in specs:
                engine = _worker_watermarker(spec)
                assert engine.key == WatermarkKey(k1=spec.k1, k2=spec.k2, eta=spec.eta)
            assert len(_WORKER_WATERMARKERS) == _WORKER_WATERMARKER_CACHE_SIZE
            # Oldest entries evicted, newest retained and reused.
            assert specs[0] not in _WORKER_WATERMARKERS
            assert _worker_watermarker(specs[-1]) is _WORKER_WATERMARKERS[specs[-1]]
        finally:
            _WORKER_WATERMARKERS.clear()
            _WORKER_WATERMARKERS.update(before)


class TestProcessRunnerBitIdentity:
    """The acceptance bar: ProcessRunner == ThreadRunner == serial, bit for bit."""

    def test_clean_table(self, watermarker, protected_small):
        binned = protected_small.watermarked
        serial = watermarker.detect(binned, 20)
        thread = ShardExecutor(4, runner="thread").detect(watermarker, binned, 20, shards=5)
        process = ShardExecutor(2, runner="process").detect(watermarker, binned, 20, shards=5)
        assert _detection_equal(serial, thread)
        assert _detection_equal(serial, process)

    def test_attacked_table(self, watermarker, protected_small):
        attacked = SubsetAlterationAttack(0.4, seed=3).run(protected_small.watermarked).attacked
        serial = watermarker.detect(attacked, 20)
        process = ShardExecutor(2, runner="process").detect(watermarker, attacked, 20, shards=4)
        assert _detection_equal(serial, process)

    def test_empty_table(self, watermarker, protected_small):
        empty = protected_small.watermarked.slice(0, 0)
        report = ShardExecutor(2, runner="process").detect(watermarker, empty, 20, shards=4)
        assert report.tuples_selected == 0 and len(report.mark) == 20
        assert report.coverage == 0.0


class TestServiceRunnerSelection:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        from repro.datagen.medical import generate_medical_table
        from repro.service import KeyVault, ProtectionService

        base = tmp_path_factory.mktemp("runner-svc")
        raw = str(base / "raw.csv")
        out = str(base / "protected.csv")
        generate_medical_table(size=1500, seed=17).to_csv(raw)
        service = ProtectionService(KeyVault.init(str(base / "vault")), chunk_size=400)
        service.register_tenant("owner", k=10, eta=20)
        service.protect("owner", raw, out, dataset_id="d")
        return service, out

    def test_csv_detect_identical_across_runners(self, served):
        service, out = served
        serial = service.detect("owner", out, dataset_id="d", workers=1)
        thread = service.detect("owner", out, dataset_id="d", workers=4, runner="thread")
        process = service.detect("owner", out, dataset_id="d", workers=2, runner="process")
        for outcome in (thread, process):
            assert outcome.mark == serial.mark
            assert outcome.rows == serial.rows
            assert outcome.tuples_selected == serial.tuples_selected
            assert outcome.positions_with_votes == serial.positions_with_votes
        assert thread.runner == "thread" and process.runner == "process"
        assert process.mark_loss == 0.0

    def test_service_level_runner_default(self, served):
        service, out = served
        from repro.service import KeyVault, ProtectionService

        process_service = ProtectionService(
            KeyVault(service.vault.root), runner="process", chunk_size=400
        )
        outcome = process_service.detect("owner", out, dataset_id="d")
        assert outcome.runner == "process"
        assert outcome.mark_loss == 0.0

    def test_worker_processes_see_identical_votes(self, watermarker, protected_small):
        """collect_tables ships pickled shards; votes come back unchanged."""
        pieces = [protected_small.watermarked.slice(0, 300), protected_small.watermarked.slice(300, 700)]
        thread_votes = list(
            ThreadRunner().collect_tables(watermarker, pieces, 20, max_workers=2)
        )
        process_votes = list(
            ProcessRunner().collect_tables(watermarker, pieces, 20, max_workers=2)
        )
        assert [votes.votes for votes in thread_votes] == [votes.votes for votes in process_votes]
        assert [votes.tuples_selected for votes in thread_votes] == [
            votes.tuples_selected for votes in process_votes
        ]


class TestExecutorRunnerWiring:
    def test_runner_name_surface(self):
        assert ShardExecutor(2).runner_name == "thread"
        assert ShardExecutor(2, runner="process").runner_name == "process"
        assert os.cpu_count() is not None  # sanity for the workers default


class TestAdversarialCsvParity:
    def test_quoted_newline_suspect_parses_identically(self, tmp_path):
        """An attacker-edited CSV with quoted newlines: both runners agree."""
        import csv

        from repro.datagen.medical import generate_medical_table
        from repro.service import KeyVault, ProtectionService

        base = tmp_path
        raw = str(base / "raw.csv")
        out = str(base / "protected.csv")
        generate_medical_table(size=600, seed=23).to_csv(raw)
        service = ProtectionService(KeyVault.init(str(base / "vault")), chunk_size=100)
        service.register_tenant("owner", k=10, eta=20)
        service.protect("owner", raw, out, dataset_id="d")

        # The "attack": rewrite some doctor cells to contain quoted newlines.
        with open(out, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        for index, row in enumerate(rows[1:], start=1):
            if index % 7 == 0:
                row[3] = f"Dr\nInjected-{index}"
        suspect = str(base / "suspect.csv")
        with open(suspect, "w", newline="", encoding="utf-8") as handle:
            csv.writer(handle).writerows(rows)

        thread = service.detect("owner", suspect, dataset_id="d", workers=2, runner="thread", chunk_size=97)
        process = service.detect("owner", suspect, dataset_id="d", workers=2, runner="process", chunk_size=97)
        assert process.rows == thread.rows == 600
        assert process.mark == thread.mark
        assert process.tuples_selected == thread.tuples_selected
        assert process.positions_with_votes == thread.positions_with_votes
