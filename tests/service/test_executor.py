"""Shard-parallel executor: bit-identical to the serial batched path."""

import pytest

from repro.attacks.alteration import SubsetAlterationAttack
from repro.attacks.deletion import DeletionMode, SubsetDeletionAttack
from repro.service.executor import ShardExecutor, shard_binned, shard_spans
from repro.watermarking.hierarchical import HierarchicalWatermarker
from repro.watermarking.mark import random_mark


class TestShardSpans:
    def test_covers_range_contiguously(self):
        spans = shard_spans(1003, 4)
        assert spans[0][0] == 0 and spans[-1][1] == 1003
        assert all(prev[1] == cur[0] for prev, cur in zip(spans, spans[1:]))
        assert {stop - start for start, stop in spans} <= {250, 251}

    def test_fewer_rows_than_shards(self):
        assert shard_spans(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_empty_and_invalid(self):
        assert shard_spans(0, 4) == []
        with pytest.raises(ValueError):
            shard_spans(10, 0)


class TestShardBinned:
    def test_shards_share_rows_and_metadata(self, protected_small):
        binned = protected_small.watermarked
        pieces = shard_binned(binned, 4)
        assert sum(len(piece.table) for piece in pieces) == len(binned.table)
        assert pieces[0].table.rows[0] is binned.table.rows[0]
        assert pieces[0].trees is binned.trees
        assert pieces[1].ultimate_nodes == binned.ultimate_nodes

    def test_mutation_through_shard_does_not_leak(self, protected_small):
        binned = protected_small.watermarked
        piece = shard_binned(binned, 4)[0]
        original = dict(binned.table.rows[0])
        piece.table.mutable_row(0)["zip_code"] = "poisoned"
        assert binned.table.rows[0] == original


def _detection_equal(left, right):
    return (
        left.mark.bits == right.mark.bits
        and left.wmd_bits == right.wmd_bits
        and left.positions_with_votes == right.positions_with_votes
        and left.tuples_selected == right.tuples_selected
        and left.cells_read == right.cells_read
        and left.votes_cast == right.votes_cast
    )


class TestShardParallelDetect:
    @pytest.fixture(scope="class")
    def watermarker(self, protection_framework):
        return HierarchicalWatermarker(protection_framework.watermark_key, copies=4)

    def test_clean_table_bit_identical(self, watermarker, protected_small):
        binned = protected_small.watermarked
        serial = watermarker.detect(binned, 20)
        for shards in (2, 4, 7):
            parallel = ShardExecutor(4).detect(watermarker, binned, 20, shards=shards)
            assert _detection_equal(serial, parallel)

    def test_attacked_tables_bit_identical(self, watermarker, protected_small):
        executor = ShardExecutor(4)
        for attack in (
            SubsetAlterationAttack(0.4, seed=3),
            SubsetDeletionAttack(0.3, seed=5, mode=DeletionMode.RANDOM),
        ):
            attacked = attack.run(protected_small.watermarked).attacked
            serial = watermarker.detect(attacked, 20)
            parallel = executor.detect(watermarker, attacked, 20, shards=5)
            assert _detection_equal(serial, parallel)

    def test_single_shard_falls_back_to_serial(self, watermarker, protected_small):
        binned = protected_small.watermarked
        assert _detection_equal(
            watermarker.detect(binned, 20),
            ShardExecutor(1).detect(watermarker, binned, 20, shards=1),
        )

    def test_detect_stream_merges_chunks(self, watermarker, protected_small):
        binned = protected_small.watermarked
        chunk_views = [binned.slice(start, stop) for start, stop in shard_spans(len(binned.table), 6)]
        streamed = ShardExecutor(3).detect_stream(watermarker, iter(chunk_views), 20)
        assert _detection_equal(watermarker.detect(binned, 20), streamed)

    def test_detect_stream_empty(self, watermarker):
        report = ShardExecutor(2).detect_stream(watermarker, iter(()), 20)
        assert report.tuples_selected == 0 and len(report.mark) == 20

    def test_detect_stream_pulls_chunks_lazily(self, watermarker, protected_small):
        """The chunk generator must not be drained ahead of the workers."""
        binned = protected_small.watermarked
        spans = shard_spans(len(binned.table), 12)
        pulled = []

        def chunks():
            for index, (start, stop) in enumerate(spans):
                pulled.append(index)
                yield binned.slice(start, stop)

        executor = ShardExecutor(2)
        original = watermarker.collect_votes
        seen_at_first_collect = []

        def tracking_collect(piece, mark_length):
            if not seen_at_first_collect:
                seen_at_first_collect.append(len(pulled))
            return original(piece, mark_length)

        watermarker.collect_votes = tracking_collect
        try:
            report = executor.detect_stream(watermarker, chunks(), 20)
        finally:
            del watermarker.collect_votes
        # With a bounded window only ~max_workers+1 chunks may be pulled
        # before the first one is processed — never all twelve.
        assert seen_at_first_collect[0] <= executor.max_workers + 1
        assert _detection_equal(watermarker.detect(binned, 20), report)

    def test_empty_table_with_explicit_shards(self, watermarker, protected_small):
        empty = protected_small.watermarked.slice(0, 0)
        report = ShardExecutor(4).detect(watermarker, empty, 20, shards=4)
        assert report.tuples_selected == 0 and len(report.mark) == 20
        embedding = ShardExecutor(4).embed(
            watermarker, empty, random_mark(20, seed=2), shards=4
        )
        assert len(embedding.watermarked.table) == 0 and embedding.cells_embedded == 0


class TestShardParallelEmbed:
    def test_embed_bit_identical(self, protection_framework, protected_small):
        watermarker = HierarchicalWatermarker(protection_framework.watermark_key, copies=4)
        mark = random_mark(20, seed=99)
        binned = protected_small.binned
        serial = watermarker.embed(binned, mark)
        parallel = ShardExecutor(4).embed(watermarker, binned, mark, shards=5)
        assert parallel.watermarked.table == serial.watermarked.table
        assert parallel.tuples_selected == serial.tuples_selected
        assert parallel.cells_embedded == serial.cells_embedded
        assert parallel.cells_changed == serial.cells_changed
        assert parallel.cells_skipped_no_bandwidth == serial.cells_skipped_no_bandwidth

    def test_embed_leaves_source_untouched(self, protection_framework, protected_small):
        watermarker = HierarchicalWatermarker(protection_framework.watermark_key, copies=4)
        binned = protected_small.binned
        before = [dict(row) for row in binned.table.rows[:50]]
        ShardExecutor(4).embed(watermarker, binned, random_mark(20, seed=1), shards=4)
        assert binned.table.rows[:50] == before


class TestPaperScaleAcceptance:
    """The ISSUE's acceptance bar: bit-identical at 20k rows, >= 4 workers."""

    @pytest.fixture(scope="class")
    def workload_20k(self):
        from repro.experiments.config import ExperimentConfig, build_workload

        return build_workload(ExperimentConfig(table_size=20_000, seed=2005, k=20, eta=50))

    def test_clean_and_attacked_20k(self, workload_20k):
        config = workload_20k.config
        watermarker = HierarchicalWatermarker(
            workload_20k.framework.watermark_key,
            copies=config.effective_copies(len(workload_20k.trees)),
        )
        executor = ShardExecutor(4)
        clean = workload_20k.protected.watermarked
        attacked = SubsetAlterationAttack(0.3, seed=7).run(clean).attacked
        for table in (clean, attacked):
            serial = watermarker.detect(table, config.mark_length)
            parallel = executor.detect(watermarker, table, config.mark_length, shards=4)
            assert _detection_equal(serial, parallel)
