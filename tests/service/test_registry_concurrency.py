"""Multi-process registry mutation: no lost updates, chains stay linear.

The pre-fork HTTP server means *processes*, not threads, race on the
registry.  These tests fork real workers (the same start method the server
uses) against each backend and assert the two properties the issue names:
every mutation survives (no lost updates under the file backend's
read-modify-write, no busy-timeout failures under SQLite), and concurrent
audit appends produce one verifiable linear chain — never a fork.
"""

import multiprocessing
import sqlite3

import pytest

from repro.service.vault import DatasetRecord, KeyVault

BACKENDS = ("file", "sqlite")
WORKERS = 4
PER_WORKER = 6

mp = multiprocessing.get_context("fork")


def _mutate(root, worker, errors):
    """One worker process: register tenants, datasets, claims, audit events."""
    try:
        vault = KeyVault(root)
        for step in range(PER_WORKER):
            tenant = f"w{worker}-t{step}"
            vault.register_tenant(tenant)
            vault.issue_token(tenant)
            vault.record_dataset(
                tenant,
                DatasetRecord(
                    dataset_id=f"d{worker}-{step}",
                    registered_statistic=float(step),
                    mark_bits="1010",
                ),
            )
            vault.audit_log().append(
                "register", tenant, payload={"worker": worker, "step": step}
            )
    except Exception as error:  # pragma: no cover - surfaces in the assert
        errors.put(f"worker {worker}: {error!r}")


def _claim(root, worker, errors):
    from repro.watermarking.keys import WatermarkKey
    from repro.watermarking.mark import Mark
    from repro.watermarking.ownership import OwnershipClaim

    try:
        store = KeyVault(root).claim_store()
        for step in range(PER_WORKER):
            store.add_claim(
                f"shared-{step}",
                OwnershipClaim(
                    claimant=f"claimant-{worker}",
                    registered_statistic=1.0,
                    mark=Mark.from_string("1010"),
                    watermark_key=WatermarkKey(k1=b"a", k2=b"b", eta=5),
                    encryption_key="e",
                    copies=2,
                    columns=None,
                ),
            )
    except Exception as error:  # pragma: no cover
        errors.put(f"worker {worker}: {error!r}")


def _run_workers(target, root):
    errors = mp.Queue()
    processes = [
        mp.Process(target=target, args=(str(root), worker, errors))
        for worker in range(WORKERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    failures = []
    while not errors.empty():
        failures.append(errors.get())
    assert not failures, failures
    assert all(process.exitcode == 0 for process in processes)


@pytest.mark.parametrize("backend", BACKENDS)
class TestNoLostUpdates:
    def test_registry_mutations_all_survive(self, tmp_path, backend):
        root = tmp_path / "v"
        KeyVault.init(root, backend=backend)
        _run_workers(_mutate, root)

        vault = KeyVault(root)
        expected = {f"w{w}-t{s}" for w in range(WORKERS) for s in range(PER_WORKER)}
        assert set(vault.tenants()) == expected
        for tenant in expected:
            assert vault.has_token(tenant)
            assert len(vault.datasets(tenant)) == 1

    def test_concurrent_audit_appends_form_one_verifiable_chain(self, tmp_path, backend):
        root = tmp_path / "v"
        KeyVault.init(root, backend=backend)
        _run_workers(_mutate, root)

        log = KeyVault(root).audit_log()
        assert log.verify() == WORKERS * PER_WORKER
        # Every worker's every step is present exactly once — nothing was
        # overwritten by a concurrent appender racing for the same index.
        seen = {
            (record["payload"]["worker"], record["payload"]["step"])
            for record in log.entries()
        }
        assert seen == {(w, s) for w in range(WORKERS) for s in range(PER_WORKER)}

    def test_concurrent_claims_merge_without_loss(self, tmp_path, backend):
        root = tmp_path / "v"
        KeyVault.init(root, backend=backend)
        _run_workers(_claim, root)

        store = KeyVault(root).claim_store()
        for step in range(PER_WORKER):
            assert sorted(store.claimants(f"shared-{step}")) == [
                f"claimant-{w}" for w in range(WORKERS)
            ]


class TestForkedConnectionSafety:
    def test_sqlite_connection_not_shared_across_fork(self, tmp_path):
        """A child must get its own connection, not the parent's (pid check)."""
        root = tmp_path / "v"
        vault = KeyVault.init(root, backend="sqlite")
        vault.register_tenant("parent")  # parent now holds a live connection

        errors = mp.Queue()

        def child(root, errors):
            try:
                # Reuses the inherited KeyVault object: the backend must
                # notice the pid change and open a fresh connection.
                vault.register_tenant("child")
            except Exception as error:  # pragma: no cover
                errors.put(repr(error))

        process = mp.Process(target=child, args=(str(root), errors))
        process.start()
        process.join(timeout=60)
        assert errors.empty() or pytest.fail(errors.get())
        assert process.exitcode == 0
        assert set(KeyVault(root).tenants()) == {"parent", "child"}

    def test_sqlite_busy_writers_serialise_instead_of_failing(self, tmp_path):
        """BEGIN IMMEDIATE + busy timeout: writers queue, none error out."""
        root = tmp_path / "v"
        KeyVault.init(root, backend="sqlite")
        _run_workers(_mutate, root)
        conn = sqlite3.connect(root / "registry.db")
        try:
            count = conn.execute("SELECT COUNT(*) FROM tenants").fetchone()[0]
        finally:
            conn.close()
        assert count == WORKERS * PER_WORKER
