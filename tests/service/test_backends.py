"""Registry backend matrix: resolution, parity, and cross-backend identity.

Unlike the rest of the service suite (which exercises whichever backend
``REPRO_VAULT_BACKEND`` selects), this module parametrises *explicitly* over
both backends and additionally asserts the cross-backend invariants: the
same registry operations produce the same observable state, and a protect /
detect / dispute pipeline produces byte/bit-identical results whichever
backend holds the vault.
"""

import json
import os
import sqlite3

import pytest

from repro.datagen.medical import generate_medical_table
from repro.service.api import ProtectionService
from repro.service.backends import (
    BACKEND_ENV,
    VaultError,
    detect_backend,
    resolve_backend,
    split_backend_scheme,
)
from repro.service.vault import DatasetRecord, KeyVault, migrate_vault

BACKENDS = ("file", "sqlite")


def make_vault(tmp_path, backend, name="v"):
    return KeyVault.init(tmp_path / name, backend=backend)


class TestResolution:
    def test_scheme_split(self):
        assert split_backend_scheme("sqlite:/srv/v") == ("sqlite", "/srv/v")
        assert split_backend_scheme("file:/srv/v") == ("file", "/srv/v")
        assert split_backend_scheme("/srv/v") == (None, "/srv/v")

    def test_scheme_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sqlite")
        vault = KeyVault.init(f"file:{tmp_path / 'v'}")
        assert vault.backend == "file"

    def test_env_decides_fresh_vaults(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sqlite")
        assert KeyVault.init(tmp_path / "v").backend == "sqlite"

    def test_bad_env_value_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "postgres")
        with pytest.raises(VaultError, match="unknown vault backend"):
            KeyVault.init(tmp_path / "v")

    def test_scheme_conflicts_with_explicit_backend(self, tmp_path):
        with pytest.raises(VaultError, match="conflicts"):
            KeyVault.init(f"sqlite:{tmp_path / 'v'}", backend="file")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_open_detects_from_disk_regardless_of_env(self, tmp_path, monkeypatch, backend):
        make_vault(tmp_path, backend).register_tenant("acme")
        # The env var must never override what is actually on disk.
        monkeypatch.setenv(BACKEND_ENV, "sqlite" if backend == "file" else "file")
        reopened = KeyVault(tmp_path / "v")
        assert reopened.backend == backend
        assert reopened.tenants() == ["acme"]

    def test_detect_backend(self, tmp_path):
        assert detect_backend(tmp_path) is None
        KeyVault.init(tmp_path / "f", backend="file")
        KeyVault.init(tmp_path / "s", backend="sqlite")
        assert detect_backend(tmp_path / "f") == "file"
        assert detect_backend(tmp_path / "s") == "sqlite"

    def test_resolve_priority_order(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sqlite")
        assert resolve_backend(tmp_path / "x", "file")[0] == "file"
        assert resolve_backend(tmp_path / "x")[0] == "sqlite"
        monkeypatch.delenv(BACKEND_ENV)
        assert resolve_backend(tmp_path / "x")[0] == "file"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_open_or_init_round_trip(self, tmp_path, backend):
        first = KeyVault.open_or_init(tmp_path / "v", backend=backend)
        first.register_tenant("acme")
        second = KeyVault.open_or_init(tmp_path / "v")
        assert second.backend == backend
        assert second.tenants() == ["acme"]


class TestSQLiteSpecifics:
    def test_unsupported_registry_version_rejected(self, tmp_path):
        vault = make_vault(tmp_path, "sqlite")
        conn = sqlite3.connect(vault.path)
        with conn:
            conn.execute("UPDATE meta SET value = '99' WHERE key = 'version'")
        conn.close()
        with pytest.raises(VaultError, match="version"):
            KeyVault(tmp_path / "v")

    def test_garbage_database_rejected(self, tmp_path):
        # No WAL sidecars here — SQLite would recover the real pages from them.
        root = tmp_path / "v"
        root.mkdir()
        (root / "registry.db").write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(VaultError, match="registry"):
            KeyVault(root)

    def test_restrictive_mode(self, tmp_path):
        vault = make_vault(tmp_path, "sqlite")
        assert (os.stat(vault.path).st_mode & 0o777) == 0o600

    def test_live_cross_handle_visibility(self, tmp_path):
        """SQLite readers see committed writes immediately — no reload needed."""
        writer = make_vault(tmp_path, "sqlite")
        reader = KeyVault(tmp_path / "v")
        writer.register_tenant("acme")
        assert reader.tenants() == ["acme"]

    def test_data_version_change_signal(self, tmp_path):
        writer = make_vault(tmp_path, "sqlite")
        reader = KeyVault(tmp_path / "v")
        assert reader.reload_if_changed() is False
        writer.register_tenant("acme")
        assert reader.reload_if_changed() is True
        assert reader.reload_if_changed() is False

    def test_own_writes_do_not_trip_the_signal(self, tmp_path):
        vault = make_vault(tmp_path, "sqlite")
        vault.register_tenant("acme")
        assert vault.reload_if_changed() is False


class TestBackendParity:
    """The same operations observe the same state on either backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_full_registry_lifecycle(self, tmp_path, backend):
        vault = make_vault(tmp_path, backend)
        record = vault.register_tenant("acme", encryption_key="E", watermark_secret="W")
        with pytest.raises(VaultError, match="already registered"):
            vault.register_tenant("acme")
        assert vault.tenant("acme") == record
        token = vault.issue_token("acme")
        assert vault.verify_token("acme", token)
        assert not vault.verify_token("acme", token[:-1] + ("x" if token[-1] != "x" else "y"))
        vault.record_dataset(
            "acme", DatasetRecord(dataset_id="d", registered_statistic=1.5, mark_bits="1010")
        )
        assert vault.dataset("acme", "d").registered_statistic == 1.5
        assert vault.datasets("acme") == ["d"]
        with pytest.raises(VaultError, match="no dataset"):
            vault.dataset("acme", "ghost")
        with pytest.raises(VaultError, match="unknown tenant"):
            vault.tenant("nobody")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_claim_order_and_move_to_end(self, tmp_path, backend):
        """Replaced claims move to the end — dispute-visible, must match."""
        from repro.watermarking.keys import WatermarkKey
        from repro.watermarking.mark import Mark
        from repro.watermarking.ownership import OwnershipClaim

        def claim_for(name):
            return OwnershipClaim(
                claimant=name,
                registered_statistic=1.0,
                mark=Mark.from_string("1010"),
                watermark_key=WatermarkKey(k1=b"a", k2=b"b", eta=5),
                encryption_key="e",
                copies=2,
                columns=None,
            )

        store = make_vault(tmp_path, backend).claim_store()
        for name in ("alpha", "beta", "gamma"):
            store.add_claim("d", claim_for(name))
        store.add_claim("d", claim_for("alpha"))  # replace -> moves to end
        assert store.claimants("d") == ["beta", "gamma", "alpha"]
        assert store.remove_claim("d", "beta") is True
        assert store.remove_claim("d", "beta") is False
        assert store.claimants("d") == ["gamma", "alpha"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_export_import_round_trip(self, tmp_path, backend):
        vault = make_vault(tmp_path, backend, "src")
        vault.register_tenant("acme", encryption_key="E", watermark_secret="W")
        vault.issue_token("acme")
        vault.record_dataset(
            "acme", DatasetRecord(dataset_id="d", registered_statistic=1.5, mark_bits="1010")
        )
        state = vault.export_state()
        other = make_vault(tmp_path, "sqlite" if backend == "file" else "file", "dst")
        other.import_state(state)
        assert other.export_state() == state

    @pytest.mark.parametrize("direction", [("file", "sqlite"), ("sqlite", "file")])
    def test_migrate_carries_registry_and_chain(self, tmp_path, direction):
        src_backend, dst_backend = direction
        source = make_vault(tmp_path, src_backend, "src")
        service = ProtectionService(source)
        service.register_tenant("acme", encryption_key="E", watermark_secret="W")
        source.record_dataset(
            "acme", DatasetRecord(dataset_id="d", registered_statistic=1.5, mark_bits="1010")
        )
        destination = make_vault(tmp_path, dst_backend, "dst")
        summary = migrate_vault(source, destination)
        assert summary["tenants"] == 1
        assert destination.tenant("acme") == source.tenant("acme")
        # Chain: the copied record plus the sealing "migrate" event, verified.
        log = destination.audit_log()
        assert log.verify() == summary["audit_records"]
        events = [record["event"] for record in log.entries()]
        assert events[0] == "register" and events[-1] == "migrate"


@pytest.fixture(scope="module")
def raw_csv(tmp_path_factory):
    base = tmp_path_factory.mktemp("identity")
    path = base / "identity.csv"
    generate_medical_table(size=1200, seed=20260808).to_csv(str(path))
    return str(path)


class TestCrossBackendIdentity:
    """The acceptance bar: identical protect/detect/dispute across backends."""

    def _pipeline(self, tmp_path, backend, raw_csv):
        vault = KeyVault.init(tmp_path / f"vault-{backend}", backend=backend)
        service = ProtectionService(vault, chunk_size=256)
        service.register_tenant(
            "owner", encryption_key="E-fixed", watermark_secret="W-fixed", k=10, eta=20, epsilon=5
        )
        out = str(tmp_path / f"out-{backend}.csv")
        protect = service.protect("owner", raw_csv, out, dataset_id="identity")
        detect = service.detect("owner", out, dataset_id="identity")
        verdict = service.dispute("owner", out, dataset_id="identity")
        with open(out, "rb") as handle:
            protected_bytes = handle.read()
        return protect, detect, verdict, protected_bytes

    def test_protect_detect_dispute_identical(self, tmp_path, raw_csv):
        results = {
            backend: self._pipeline(tmp_path, backend, raw_csv) for backend in BACKENDS
        }
        p_file, d_file, v_file, bytes_file = results["file"]
        p_sql, d_sql, v_sql, bytes_sql = results["sqlite"]
        assert bytes_file == bytes_sql  # byte-identical protected output
        assert p_file.mark == p_sql.mark
        assert p_file.registered_statistic == p_sql.registered_statistic
        assert p_file.cells_changed == p_sql.cells_changed
        assert d_file.mark == d_sql.mark  # bit-identical recovered mark
        assert d_file.mark_loss == d_sql.mark_loss == 0.0
        assert v_file.winner == v_sql.winner == "owner"
        assert [a.claimant for a in v_file.assessments] == [
            a.claimant for a in v_sql.assessments
        ]

    def test_status_reports_backend(self, tmp_path, raw_csv):
        for backend in BACKENDS:
            vault = KeyVault.init(tmp_path / f"s-{backend}", backend=backend)
            service = ProtectionService(vault)
            service.register_tenant("owner")
            status = service.status()
            assert status["backend"] == backend
            assert "owner" in status["tenants"]
