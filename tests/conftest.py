"""Shared fixtures for the test suite.

Expensive artefacts (the ontology registry, synthetic tables, a fully
protected workload) are built once per session; tests that need to mutate
them work on copies.
"""

from __future__ import annotations

import pytest

from repro.binning.binner import BinningAgent
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.datagen.medical import generate_medical_table
from repro.dht.builders import binary_numeric_tree, from_nested_mapping
from repro.framework.pipeline import ProtectionFramework
from repro.metrics.usage_metrics import UsageMetrics
from repro.ontology.registry import roles_tree, standard_ontology


@pytest.fixture(scope="session")
def role_tree():
    """The Figure 1 person-role DHT (three levels, 10 leaves)."""
    return roles_tree()


@pytest.fixture(scope="session")
def age8_tree():
    """A small binary numeric DHT: [0, 80) in eight 10-year intervals."""
    return binary_numeric_tree("age", 0, 80, n_intervals=8)


@pytest.fixture(scope="session")
def tiny_tree():
    """A two-level categorical DHT used by hand-computable tests."""
    return from_nested_mapping(
        "ward",
        "Hospital",
        {
            "Medicine": ["Cardiology", "Neurology", "Oncology"],
            "Surgery": ["Orthopedics", "Trauma"],
        },
    )


@pytest.fixture(scope="session")
def trees():
    """The full per-column DHT registry of the medical schema."""
    return dict(standard_ontology().items())


@pytest.fixture(scope="session")
def small_table():
    """A 400-row synthetic clinical table (shared read-only)."""
    return generate_medical_table(size=400, seed=11)


@pytest.fixture(scope="session")
def medium_table():
    """A 1500-row synthetic clinical table (shared read-only)."""
    return generate_medical_table(size=1500, seed=23)


@pytest.fixture(scope="session")
def depth1_metrics(trees):
    """Usage metrics with the depth-1 frontier for every column."""
    return UsageMetrics.uniform_depth(trees, 1)


@pytest.fixture(scope="session")
def binned_small(trees, depth1_metrics, medium_table):
    """The medium table binned with k=10 (mono enforcement)."""
    agent = BinningAgent(
        trees,
        depth1_metrics,
        KAnonymitySpec(k=10, mode=EnforcementMode.MONO),
        "test-encryption-key",
    )
    return agent.bin(medium_table)


@pytest.fixture(scope="session")
def protection_framework(trees, depth1_metrics):
    """A fully configured framework (k=10 with the Section 6 ε margin, eta=25)."""
    return ProtectionFramework(
        trees,
        depth1_metrics,
        KAnonymitySpec(k=10, mode=EnforcementMode.MONO, epsilon=5),
        encryption_key="test-encryption-key",
        watermark_secret="test-watermark-secret",
        eta=25,
        mark_length=20,
        copies=4,
    )


@pytest.fixture(scope="session")
def protected_small(protection_framework, medium_table):
    """The medium table taken through the full protect() pipeline."""
    return protection_framework.protect(medium_table)
