"""Tests for usage metrics and their off-line enforcement."""

import pytest

from repro.metrics.information_loss import column_information_loss, leaf_counts
from repro.metrics.usage_metrics import (
    InformationLossBounds,
    UsageMetrics,
    derive_maximal_nodes,
    frontier_at_depth,
)


class TestInformationLossBounds:
    def test_bound_lookup(self):
        bounds = InformationLossBounds({"age": 0.3, "ward": 0.5}, average=0.4)
        assert bounds.bound_for("age") == 0.3
        with pytest.raises(KeyError):
            bounds.bound_for("missing")

    def test_validation(self):
        with pytest.raises(ValueError):
            InformationLossBounds({"age": 1.5})
        with pytest.raises(ValueError):
            InformationLossBounds({"age": 0.5}, average=-0.1)

    def test_satisfied_by(self):
        bounds = InformationLossBounds({"age": 0.3, "ward": 0.5}, average=0.35)
        assert bounds.satisfied_by({"age": 0.2, "ward": 0.5})
        assert not bounds.satisfied_by({"age": 0.31, "ward": 0.1})
        assert not bounds.satisfied_by({"age": 0.3, "ward": 0.5})  # average exceeded
        assert bounds.satisfied_by({})


class TestFrontierAtDepth:
    def test_depth_zero_is_root(self, role_tree):
        assert frontier_at_depth(role_tree, 0) == [role_tree.root]

    def test_depth_one(self, role_tree):
        assert {node.name for node in frontier_at_depth(role_tree, 1)} == {
            "Medical staff",
            "Administrative staff",
        }

    def test_depth_beyond_leaves_returns_leaves(self, role_tree):
        frontier = frontier_at_depth(role_tree, 99)
        assert set(frontier) == set(role_tree.leaves())

    def test_frontier_is_always_a_valid_cut(self, role_tree, age8_tree):
        for tree in (role_tree, age8_tree):
            for depth in range(0, tree.height + 2):
                assert tree.is_valid_cut(frontier_at_depth(tree, depth))

    def test_negative_depth_rejected(self, role_tree):
        with pytest.raises(ValueError):
            frontier_at_depth(role_tree, -1)


class TestDeriveMaximalNodes:
    def test_bound_one_gives_root(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse", "Clerk"])
        assert derive_maximal_nodes(role_tree, counts, 1.0) == [role_tree.root]

    def test_bound_zero_keeps_populated_leaves_ungeneralized(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse", "Clerk"])
        frontier = derive_maximal_nodes(role_tree, counts, 0.0)
        assert role_tree.is_valid_cut(frontier)
        assert column_information_loss(role_tree, frontier, counts) == 0.0
        # Leaves that actually hold entries may not be generalized at all;
        # empty subtrees may stay collapsed (they cost nothing).
        assert role_tree.node("Nurse") in frontier
        assert role_tree.node("Clerk") in frontier

    def test_bound_zero_with_full_coverage_gives_all_leaves(self, role_tree):
        values = [leaf.value for leaf in role_tree.leaves()]
        counts = leaf_counts(role_tree, values)
        assert set(derive_maximal_nodes(role_tree, counts, 0.0)) == set(role_tree.leaves())

    def test_result_is_valid_and_within_bound(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse", "Clerk", "Surgeon", "Director", "Pharmacist"] * 3)
        for bound in (0.1, 0.3, 0.5, 0.8):
            frontier = derive_maximal_nodes(role_tree, counts, bound)
            assert role_tree.is_valid_cut(frontier)
            assert column_information_loss(role_tree, frontier, counts) <= bound + 1e-9

    def test_tighter_bound_means_finer_frontier(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse", "Clerk", "Surgeon", "Director"] * 5)
        loose = derive_maximal_nodes(role_tree, counts, 0.9)
        tight = derive_maximal_nodes(role_tree, counts, 0.1)
        assert len(tight) >= len(loose)

    def test_invalid_bound_rejected(self, role_tree):
        with pytest.raises(ValueError):
            derive_maximal_nodes(role_tree, {}, 1.2)


class TestUsageMetrics:
    def test_explicit_frontiers(self, role_tree):
        metrics = UsageMetrics.from_maximal_nodes(
            {"role": [role_tree.node("Medical staff"), role_tree.node("Administrative staff")]}
        )
        frontier = metrics.maximal_nodes("role", role_tree)
        assert {node.name for node in frontier} == {"Medical staff", "Administrative staff"}
        assert metrics.columns() == ["role"]

    def test_explicit_frontier_must_be_valid(self, role_tree):
        metrics = UsageMetrics(maximal_node_names={"role": ("Medical staff",)})
        with pytest.raises(ValueError):
            metrics.maximal_nodes("role", role_tree)

    def test_uniform_depth_constructor(self, trees):
        metrics = UsageMetrics.uniform_depth(trees, 1)
        for column, tree in trees.items():
            frontier = metrics.maximal_nodes(column, tree)
            assert tree.is_valid_cut(frontier)
            assert all(node.depth() <= 1 for node in frontier)

    def test_bounds_compiled_lazily(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse", "Clerk", "Surgeon"] * 4)
        metrics = UsageMetrics.from_bounds(InformationLossBounds({"role": 0.4}))
        frontier = metrics.maximal_nodes("role", role_tree, counts)
        assert role_tree.is_valid_cut(frontier)
        assert column_information_loss(role_tree, frontier, counts) <= 0.4 + 1e-9

    def test_bounds_require_counts(self, role_tree):
        metrics = UsageMetrics.from_bounds(InformationLossBounds({"role": 0.4}))
        with pytest.raises(ValueError):
            metrics.maximal_nodes("role", role_tree)

    def test_no_constraint_defaults_to_root(self, role_tree):
        metrics = UsageMetrics()
        assert metrics.maximal_nodes("role", role_tree) == [role_tree.root]

    def test_watermark_slack_lowers_the_frontier(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse", "Clerk", "Surgeon", "Pharmacist"] * 4)
        plain = UsageMetrics.from_bounds(InformationLossBounds({"role": 0.6}))
        slack = UsageMetrics.from_bounds(InformationLossBounds({"role": 0.6}), watermark_slack=0.4)
        assert len(slack.maximal_nodes("role", role_tree, counts)) >= len(
            plain.maximal_nodes("role", role_tree, counts)
        )

    def test_watermark_slack_validation(self):
        with pytest.raises(ValueError):
            UsageMetrics(watermark_slack=1.0)

    def test_allows_cut(self, role_tree):
        metrics = UsageMetrics.from_maximal_nodes(
            {"role": [role_tree.node("Medical staff"), role_tree.node("Administrative staff")]}
        )
        assert metrics.allows_cut("role", role_tree, role_tree.leaves())
        assert metrics.allows_cut(
            "role", role_tree, [role_tree.node("Medical staff"), role_tree.node("Administrative staff")]
        )
        assert not metrics.allows_cut("role", role_tree, [role_tree.root])

    def test_caching_returns_copies(self, role_tree):
        metrics = UsageMetrics.from_maximal_nodes({"role": [role_tree.root]})
        first = metrics.maximal_nodes("role", role_tree)
        first.append(role_tree.node("Doctor"))
        assert metrics.maximal_nodes("role", role_tree) == [role_tree.root]
