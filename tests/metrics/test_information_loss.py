"""Tests for the information-loss metrics (Equations 1–3)."""

import pytest

from repro.dht.builders import binary_numeric_tree
from repro.metrics.information_loss import (
    categorical_cut_loss,
    column_information_loss,
    leaf_counts,
    numeric_cut_loss,
    specificity_loss,
    table_information_loss,
    total_information_loss,
)


class TestLeafCounts:
    def test_counts_by_leaf(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse", "Nurse", "Surgeon", "Clerk"])
        assert counts[role_tree.node("Nurse")] == 2
        assert counts[role_tree.node("Surgeon")] == 1
        assert counts[role_tree.node("Physician")] == 0
        assert sum(counts.values()) == 4

    def test_numeric_values_map_to_interval_leaves(self, age8_tree):
        counts = leaf_counts(age8_tree, [5, 7, 25, 78])
        assert counts[age8_tree.leaf_for_raw(5)] == 2
        assert counts[age8_tree.leaf_for_raw(25)] == 1

    def test_unknown_value_raises(self, role_tree):
        with pytest.raises(ValueError):
            leaf_counts(role_tree, ["not-a-role"])


class TestCategoricalLoss:
    def test_leaf_cut_has_zero_loss(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse", "Surgeon", "Clerk"])
        assert categorical_cut_loss(role_tree, role_tree.leaf_cut(), counts) == 0.0

    def test_root_cut_loss(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse"] * 10)
        # Root cut: every entry loses (|S|-1)/|S| = 9/10.
        assert categorical_cut_loss(role_tree, role_tree.root_cut(), counts) == pytest.approx(0.9)

    def test_equation1_hand_computed(self, role_tree):
        """Generalize Pharmacist/Nurse/Consultant to Paramedic (the paper's example)."""
        counts = leaf_counts(role_tree, ["Pharmacist", "Nurse", "Nurse", "Surgeon"])
        cut = [
            role_tree.node("Paramedic"),  # covers 3 leaves, 3 entries
            role_tree.node("Surgeon"),
            role_tree.node("Physician"),
            role_tree.node("Radiologist"),
            role_tree.node("Clerk"),
            role_tree.node("Receptionist"),
            role_tree.node("Administrator"),
            role_tree.node("Director"),
        ]
        # |S| = 10 leaves, generalized entries: 3 with |Si|=3, 1 with |Si|=1.
        expected = (3 * (3 - 1) / 10 + 1 * 0) / 4
        assert categorical_cut_loss(role_tree, cut, counts) == pytest.approx(expected)

    def test_loss_monotone_in_generalization(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse", "Surgeon", "Clerk", "Director", "Pharmacist"])
        mid_cut = [role_tree.node("Medical staff"), role_tree.node("Administrative staff")]
        low = categorical_cut_loss(role_tree, role_tree.leaf_cut(), counts)
        mid = categorical_cut_loss(role_tree, mid_cut, counts)
        high = categorical_cut_loss(role_tree, role_tree.root_cut(), counts)
        assert low < mid < high

    def test_empty_column_has_zero_loss(self, role_tree):
        counts = leaf_counts(role_tree, [])
        assert categorical_cut_loss(role_tree, role_tree.root_cut(), counts) == 0.0

    def test_invalid_cut_rejected(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse"])
        with pytest.raises(ValueError):
            categorical_cut_loss(role_tree, [role_tree.node("Medical staff")], counts)


class TestNumericLoss:
    def test_equation2_hand_computed(self, age8_tree):
        counts = leaf_counts(age8_tree, [5, 15, 72])
        # Generalize [0,10) and [10,20) to [0,20); keep the rest as leaves.
        twenty = next(node for node in age8_tree.nodes if str(node.value) == "[0,20)")
        rest = [leaf for leaf in age8_tree.leaves() if leaf.value.lower >= 20]
        cut = [twenty, *rest]
        # Entries: two in [0,20) lose 20/80 each, one in [70,80) loses 10/80.
        expected = (2 * (20 / 80) + 1 * (10 / 80)) / 3
        assert numeric_cut_loss(age8_tree, cut, counts) == pytest.approx(expected)

    def test_leaf_cut_loss_is_leaf_width_fraction(self, age8_tree):
        counts = leaf_counts(age8_tree, [5, 15])
        assert numeric_cut_loss(age8_tree, age8_tree.leaf_cut(), counts) == pytest.approx(10 / 80)

    def test_root_cut_loss_is_one(self, age8_tree):
        counts = leaf_counts(age8_tree, [5, 15, 73])
        assert numeric_cut_loss(age8_tree, age8_tree.root_cut(), counts) == pytest.approx(1.0)

    def test_rejects_categorical_tree(self, role_tree):
        counts = leaf_counts(role_tree, ["Nurse"])
        with pytest.raises(ValueError):
            numeric_cut_loss(role_tree, role_tree.root_cut(), counts)

    def test_dispatch(self, role_tree, age8_tree):
        role_counts = leaf_counts(role_tree, ["Nurse"])
        age_counts = leaf_counts(age8_tree, [5])
        assert column_information_loss(role_tree, role_tree.root_cut(), role_counts) == pytest.approx(0.9)
        assert column_information_loss(age8_tree, age8_tree.root_cut(), age_counts) == pytest.approx(1.0)


class TestTableLevel:
    def test_normalized_loss_is_average(self):
        assert table_information_loss({"a": 0.2, "b": 0.4}) == pytest.approx(0.3)
        assert table_information_loss({}) == 0.0

    def test_total_loss_is_sum(self):
        assert total_information_loss({"a": 0.2, "b": 0.4}) == pytest.approx(0.6)

    def test_out_of_range_losses_rejected(self):
        with pytest.raises(ValueError):
            table_information_loss({"a": 1.5})
        with pytest.raises(ValueError):
            table_information_loss({"a": -0.1})


class TestSpecificityLoss:
    def test_bounds(self, role_tree):
        assert specificity_loss(role_tree, role_tree.leaf_cut()) == 0.0
        n = len(role_tree.leaves())
        assert specificity_loss(role_tree, role_tree.root_cut()) == pytest.approx((n - 1) / n)

    def test_intermediate_cut(self, role_tree):
        cut = [role_tree.node("Medical staff"), role_tree.node("Administrative staff")]
        assert specificity_loss(role_tree, cut) == pytest.approx((10 - 2) / 10)

    def test_invalid_cut_rejected(self, role_tree):
        with pytest.raises(ValueError):
            specificity_loss(role_tree, [role_tree.node("Doctor")])
