"""End-to-end integration tests: the full Figure 2 pipeline under fire."""

import pytest

from repro.attacks.addition import SubsetAdditionAttack
from repro.attacks.alteration import SubsetAlterationAttack
from repro.attacks.deletion import SubsetDeletionAttack
from repro.attacks.generalization_attack import GeneralizationAttack
from repro.attacks.ownership_attacks import AdditiveMarkAttack
from repro.binning.kanonymity import EnforcementMode, KAnonymitySpec
from repro.datagen.medical import generate_medical_table
from repro.framework.analysis import seamlessness_report
from repro.framework.pipeline import ProtectionFramework
from repro.metrics.usage_metrics import UsageMetrics
from repro.ontology.registry import standard_ontology


@pytest.fixture(scope="module")
def pipeline():
    """A complete hospital-side setup on a 2500-row table."""
    table = generate_medical_table(size=2500, seed=99)
    trees = dict(standard_ontology().items())
    framework = ProtectionFramework(
        trees,
        UsageMetrics.uniform_depth(trees, 1),
        KAnonymitySpec(k=15, mode=EnforcementMode.MONO, epsilon=5),
        encryption_key="integration-encryption-key",
        watermark_secret="integration-watermark-secret",
        eta=40,
        mark_length=20,
        copies=4,
    )
    protected = framework.protect(table)
    return table, framework, protected


class TestPrivacyGuarantees:
    def test_k_anonymity_per_attribute_after_watermarking(self, pipeline):
        _, _, protected = pipeline
        for column in protected.watermarked.quasi_columns:
            sizes = protected.watermarked.bin_sizes(column)
            assert all(size >= 15 for size in sizes.values()), column

    def test_no_raw_quasi_identifier_values_leak(self, pipeline):
        table, _, protected = pipeline
        # Every symptom in the outsourced table is a generalized category, not
        # one of the raw leaf-level diagnoses that could re-identify.
        raw_symptoms = set(table.column_values("symptom"))
        outsourced = set(protected.outsourced_table.column_values("symptom"))
        tree = protected.watermarked.tree("symptom")
        for value in outsourced:
            node = tree.value_to_node(value)
            assert not node.is_leaf or value not in raw_symptoms or node.name in protected.watermarked.ultimate_nodes["symptom"]

    def test_identifiers_encrypted_but_traceable_by_owner(self, pipeline):
        table, framework, protected = pipeline
        raw = table.column_values("ssn")
        outsourced = protected.outsourced_table.column_values("ssn")
        assert set(raw).isdisjoint(outsourced)
        # Traceability (Section 4.2.3): the owner can map tokens back.
        claim = framework.owner_claim()
        from repro.crypto.cipher import FieldEncryptor

        encryptor = FieldEncryptor(claim.encryption_key)
        assert [encryptor.decrypt(token) for token in outsourced[:20]] == raw[:20]

    def test_seamlessness(self, pipeline):
        _, _, protected = pipeline
        report = seamlessness_report(protected.binned, protected.watermarked)
        assert not report.any_bin_below_k
        assert sum(column.bins_changed for column in report.columns) > 0


class TestOwnershipUnderAttack:
    def test_mark_survives_each_attack_type(self, pipeline):
        _, framework, protected = pipeline
        attacks = [
            SubsetAlterationAttack(0.3, seed=1),
            SubsetAdditionAttack(0.5, seed=2),
            SubsetDeletionAttack(0.4, seed=3),
            GeneralizationAttack(levels=1),
        ]
        for attack in attacks:
            attacked = attack.run(protected.watermarked).attacked
            loss = framework.mark_loss(attacked, protected.mark)
            assert loss <= 0.35, type(attack).__name__

    def test_mark_survives_stacked_attacks(self, pipeline):
        _, framework, protected = pipeline
        stage1 = GeneralizationAttack(levels=1).run(protected.watermarked).attacked
        stage2 = SubsetDeletionAttack(0.25, seed=4).run(stage1).attacked
        stage3 = SubsetAdditionAttack(0.25, seed=5).run(stage2).attacked
        loss = framework.mark_loss(stage3, protected.mark)
        assert loss <= 0.35

    def test_dispute_after_attack_still_resolves_for_owner(self, pipeline):
        _, framework, protected = pipeline
        # The data thief republishes an attacked copy with their own mark on top.
        stolen = SubsetAlterationAttack(0.15, seed=6).run(protected.watermarked).attacked
        attack = AdditiveMarkAttack(seed=7, eta=40, copies=4)
        result = attack.run(stolen, 20)
        verdict = framework.resolve_dispute(
            result.attack.attacked, [framework.owner_claim("hospital"), result.attacker_claim]
        )
        assert verdict.winner == "hospital"


class TestReproducibility:
    def test_whole_pipeline_is_deterministic(self):
        def run_once():
            table = generate_medical_table(size=600, seed=7)
            trees = dict(standard_ontology().items())
            framework = ProtectionFramework(
                trees,
                UsageMetrics.uniform_depth(trees, 1),
                KAnonymitySpec(k=8, mode=EnforcementMode.MONO),
                encryption_key="det-key",
                watermark_secret="det-secret",
                eta=20,
            )
            protected = framework.protect(table)
            return protected.outsourced_table, protected.mark

        table_a, mark_a = run_once()
        table_b, mark_b = run_once()
        assert mark_a == mark_b
        assert table_a == table_b
