#!/usr/bin/env python3
"""Gate CI on benchmark regressions against a committed baseline.

Stdlib only.  Reads one or more ``pytest-benchmark`` JSON documents (the
``--benchmark-json`` artifacts ``bench_service.py`` / ``bench_scaling.py``
emit), extracts each benchmark's best-of-rounds wall time (``stats.min`` —
the noise-resistant statistic the benchmarks themselves report), and compares
it against ``benchmarks/baseline.json``:

    # fail the build when any benchmark regressed past the tolerance:
    python tools/check_bench.py --check bench-service.json bench-scaling.json

    # refresh the committed baseline from a trusted run:
    python tools/check_bench.py --update bench-service.json bench-scaling.json

A benchmark **fails** when its measured time exceeds the baseline by more
than the tolerance (default ±30%, overridable per invocation with
``--tolerance`` or per baseline file via its ``tolerance`` field).  A
benchmark that got *faster* than the tolerance window never fails — it is
reported as a candidate for a baseline refresh, so improvements ratchet in
deliberately instead of silently widening the regression budget.  Benchmarks
missing from the baseline fail ``--check`` (a new benchmark must commit its
baseline in the same PR); baseline entries missing from the results are
reported but do not fail (CI may run a subset).  Benchmarks whose baseline
time sits under the gate floor (1 ms) are never gated: several suites use a
no-op ``pedantic`` timer as a carrier for ``extra_info`` ratios, and
sub-millisecond timings are scheduler noise on any shared runner.

Exit codes: 0 clean, 1 regression (or missing baseline entry), 2 operational
error (unreadable/malformed JSON).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"
DEFAULT_TOLERANCE = 0.30

#: Baselines under this many seconds are informational, never gated.
MIN_GATE_SECONDS = 0.001


def _operational_error(message: str) -> SystemExit:
    """Exit 2 with *message*: distinguishable from a perf regression (exit 1)."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def load_results(paths: list[str]) -> dict[str, float]:
    """``{benchmark name: min seconds}`` across all result documents."""
    results: dict[str, float] = {}
    for path in paths:
        try:
            document = json.loads(Path(path).read_text(encoding="utf-8"))
            benchmarks = document["benchmarks"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as error:
            raise _operational_error(f"cannot read benchmark JSON {path!r}: {error!r}")
        for bench in benchmarks:
            try:
                name = str(bench["name"])
                results[name] = float(bench["stats"]["min"])
            except (KeyError, TypeError, ValueError) as error:
                raise _operational_error(f"malformed benchmark entry in {path!r}: {error!r}")
    if not results:
        raise _operational_error(f"no benchmarks found in {', '.join(paths)}")
    return results


def check(
    results: dict[str, float], baseline: dict, *, tolerance: float | None = None
) -> tuple[list[str], list[str]]:
    """Compare *results* to a *baseline* document.

    Returns ``(failures, notes)``: human-readable lines.  The build fails
    when *failures* is non-empty.
    """
    entries = baseline.get("entries", {})
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    failures: list[str] = []
    notes: list[str] = []
    for name, seconds in sorted(results.items()):
        entry = entries.get(name)
        if entry is None:
            failures.append(
                f"{name}: no baseline entry — run check_bench.py --update and commit "
                "benchmarks/baseline.json alongside the new benchmark"
            )
            continue
        base = float(entry["min_seconds"])
        ratio = seconds / base if base > 0 else float("inf")
        if base < MIN_GATE_SECONDS:
            notes.append(
                f"{name}: {seconds:.6f}s vs baseline {base:.6f}s — below the "
                f"{MIN_GATE_SECONDS:.3f}s gate floor, informational only"
            )
        elif ratio > 1.0 + tolerance:
            failures.append(
                f"{name}: {seconds:.4f}s vs baseline {base:.4f}s "
                f"({ratio:.2f}x, tolerance {1.0 + tolerance:.2f}x) — REGRESSION"
            )
        elif ratio < 1.0 - tolerance:
            notes.append(
                f"{name}: {seconds:.4f}s vs baseline {base:.4f}s ({ratio:.2f}x) — "
                "faster than the tolerance window; consider refreshing the baseline"
            )
        else:
            notes.append(f"{name}: {seconds:.4f}s vs baseline {base:.4f}s ({ratio:.2f}x) ok")
    for name in sorted(set(entries) - set(results)):
        notes.append(f"{name}: in baseline but not in this run (subset run?) — skipped")
    return failures, notes


def updated_baseline(
    results: dict[str, float], tolerance: float, bench_size: int | None = None
) -> dict:
    """A fresh baseline document for *results*.

    *bench_size* records the ``REPRO_BENCH_SIZE`` the results were measured
    at: absolute times are only comparable at the same row count, so
    ``--check`` refuses to compare against a baseline taken at a different
    size (a refresh from a default-size local run would otherwise skew the
    gate silently).
    """
    document: dict = {
        "tolerance": tolerance,
        "entries": {
            name: {"min_seconds": round(seconds, 6)} for name, seconds in sorted(results.items())
        },
    }
    if bench_size is not None:
        document["bench_size"] = bench_size
    return document


def _env_bench_size() -> int | None:
    raw = os.environ.get("REPRO_BENCH_SIZE")
    return int(raw) if raw else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="+", help="pytest-benchmark JSON files to inspect")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true", help="fail (exit 1) on regression")
    mode.add_argument("--update", action="store_true", help="rewrite the baseline from the results")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=f"baseline JSON path (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional slowdown (default: the baseline file's, else 0.30)",
    )
    args = parser.parse_args(argv)
    results = load_results(args.results)

    if args.update:
        tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        document = updated_baseline(results, tolerance, bench_size=_env_bench_size())
        Path(args.baseline).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.baseline} with {len(results)} entries (tolerance ±{tolerance:.0%})")
        return 0

    try:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise _operational_error(f"cannot read baseline {args.baseline!r}: {error!r}")
    baseline_size = baseline.get("bench_size")
    current_size = _env_bench_size()
    if baseline_size is not None:
        if current_size is None:
            raise _operational_error(
                f"baseline was measured at REPRO_BENCH_SIZE={baseline_size} but this "
                "run's size is unknown — export the same REPRO_BENCH_SIZE when running "
                "the benchmarks and the check (an unset env means the benchmarks "
                "defaulted to a different size, masking regressions)"
            )
        if baseline_size != current_size:
            raise _operational_error(
                f"baseline was measured at REPRO_BENCH_SIZE={baseline_size} but this run "
                f"used {current_size}; absolute times are not comparable across sizes"
            )
    failures, notes = check(results, baseline, tolerance=args.tolerance)
    for line in notes:
        print(f"  {line}")
    if failures:
        print(f"perf gate FAILED ({len(failures)} regression(s)):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"perf gate ok: {len(results)} benchmark(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
