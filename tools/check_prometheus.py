#!/usr/bin/env python3
"""Validate a Prometheus text-exposition document — stdlib only.

CI's http-smoke job scrapes ``GET /metrics?format=prometheus`` from a live
coordinator/worker pair and pipes the body through this checker, so a
malformed exposition (a histogram whose cumulative buckets decrease, a
``+Inf`` bucket that disagrees with ``_count``, a sample without a ``TYPE``)
fails the build instead of failing the first real scraper pointed at it.

    python tools/check_prometheus.py metrics.txt
    curl -s "$URL/metrics?format=prometheus" | python tools/check_prometheus.py -
    python tools/check_prometheus.py metrics.txt \
        --require repro_requests_total --require repro_request_duration_seconds
    python tools/check_prometheus.py metrics.txt \
        --require-label repro_server_info=host --require-label repro_server_info=pid

Checks, per the exposition format spec:

* every line is a comment, blank, or ``name{labels} value``;
* metric and label names are legal; label values are correctly quoted;
* every sample's family has a ``# TYPE`` line, declared before use;
* histogram families expose ``_bucket``/``_sum``/``_count`` series, bucket
  ``le`` bounds parse, cumulative counts are monotonically non-decreasing
  within one label set, and the ``+Inf`` bucket equals ``_count``;
* ``--require NAME`` (repeatable) asserts the family is present;
* ``--require-label FAMILY=LABEL`` (repeatable) asserts the family is
  present *and* every one of its samples carries the label — the guard for
  the pre-fork server's per-worker ``host``/``pid`` stamping, where an
  unstamped sample would silently collide across workers in an aggregator.

Exit status: 0 valid, 1 invalid or a required family missing, 2 usage error.
"""

from __future__ import annotations

import argparse
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>-?\d+))?$"
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: Suffixes a histogram TYPE declaration covers.
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _family_of(sample_name: str, types: dict[str, str]) -> str | None:
    """The declared family a sample belongs to (histogram suffixes collapse)."""
    if sample_name in types:
        return sample_name
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def _parse_labels(raw: str | None, errors: list[str], lineno: int) -> dict[str, str]:
    if not raw:
        return {}
    labels: dict[str, str] = {}
    consumed = 0
    for match in LABEL_PAIR.finditer(raw):
        name, value = match.group(1), match.group(2)
        if not LABEL_NAME.match(name):
            errors.append(f"line {lineno}: illegal label name {name!r}")
        labels[name] = value
        consumed = match.end()
        if consumed < len(raw) and raw[consumed] == ",":
            consumed += 1
    if consumed != len(raw):
        errors.append(f"line {lineno}: malformed label section {raw!r}")
    return labels


def validate(
    text: str,
    require: list[str] | None = None,
    require_labels: list[tuple[str, str]] | None = None,
) -> list[str]:
    """Every problem found in *text*; empty means a valid exposition."""
    errors: list[str] = []
    label_demands: dict[str, set[str]] = {}
    for family, label in require_labels or []:
        label_demands.setdefault(family, set()).add(label)
    types: dict[str, str] = {}
    helps: set[str] = set()
    # (family, frozen non-le labels) -> list of (le_bound, cumulative, lineno)
    buckets: dict[tuple[str, tuple], list[tuple[float, float, int]]] = {}
    counts: dict[tuple[str, tuple], float] = {}
    seen_families: set[str] = set()

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                errors.append(f"line {lineno}: malformed HELP line")
            else:
                helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not METRIC_NAME.match(parts[2]):
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                errors.append(f"line {lineno}: unknown metric type {kind!r}")
            if name in types:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # plain comment

        match = SAMPLE_LINE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparsable sample line {line!r}")
            continue
        name = match.group("name")
        labels = _parse_labels(match.group("labels"), errors, lineno)
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: unparsable sample value {match.group('value')!r}")
            continue
        family = _family_of(name, types)
        if family is None:
            errors.append(f"line {lineno}: sample {name!r} has no preceding TYPE declaration")
            continue
        seen_families.add(family)
        for demanded in sorted(label_demands.get(family, ())):
            if demanded not in labels:
                errors.append(
                    f"line {lineno}: sample of {family!r} lacks required label {demanded!r}"
                )

        if types[family] == "histogram":
            series = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            key = (family, series)
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {lineno}: histogram bucket without an le label")
                    continue
                try:
                    bound = _parse_value(labels["le"])
                except ValueError:
                    errors.append(f"line {lineno}: unparsable le bound {labels['le']!r}")
                    continue
                buckets.setdefault(key, []).append((bound, value, lineno))
            elif name.endswith("_count"):
                counts[key] = value

    for (family, series), entries in buckets.items():
        entries.sort(key=lambda item: item[0])
        label_text = ",".join(f"{k}={v}" for k, v in series) or "<no labels>"
        previous = -1.0
        for bound, cumulative, lineno in entries:
            if cumulative < previous:
                errors.append(
                    f"line {lineno}: {family}{{{label_text}}} cumulative bucket counts "
                    f"decrease at le={bound}"
                )
            previous = cumulative
        if not entries or not math.isinf(entries[-1][0]):
            errors.append(f"{family}{{{label_text}}}: missing +Inf bucket")
        else:
            inf_count = entries[-1][1]
            declared = counts.get((family, series))
            if declared is None:
                errors.append(f"{family}{{{label_text}}}: missing _count series")
            elif inf_count != declared:
                errors.append(
                    f"{family}{{{label_text}}}: +Inf bucket ({inf_count}) != _count ({declared})"
                )

    for name in require or []:
        if name not in seen_families:
            errors.append(f"required metric family {name!r} is absent")
    for family in sorted(label_demands):
        if family not in seen_families:
            errors.append(f"label-required metric family {family!r} is absent")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="exposition file to validate, or - for stdin")
    parser.add_argument(
        "--require",
        action="append",
        metavar="NAME",
        help="fail unless this metric family is present (repeatable)",
    )
    parser.add_argument(
        "--require-label",
        action="append",
        metavar="FAMILY=LABEL",
        help=(
            "fail unless this metric family is present and every one of its "
            "samples carries the label (repeatable)"
        ),
    )
    args = parser.parse_args(argv)
    require_labels: list[tuple[str, str]] = []
    for spec in args.require_label or []:
        family, separator, label = spec.partition("=")
        if not separator or not family or not label:
            print(f"error: --require-label wants FAMILY=LABEL, got {spec!r}", file=sys.stderr)
            return 2
        require_labels.append((family, label))
    if args.path == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    errors = validate(text, require=args.require, require_labels=require_labels)
    for error in errors:
        print(f"invalid exposition: {error}", file=sys.stderr)
    if not errors:
        families = len({line.split(" ")[2] for line in text.splitlines() if line.startswith("# TYPE ")})
        print(f"ok: {families} metric families validate")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
