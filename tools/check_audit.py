#!/usr/bin/env python3
"""Independently verify a repro audit chain (stdlib only, no repro imports).

The audit log (docs/registry.md) is an append-only sequence of JSON records;
record *i* carries ``prev`` = the sha256 digest of record *i-1* (64 zeros at
genesis) and ``digest`` = sha256 over the canonical JSON (sorted keys, no
whitespace) of the record without its ``digest`` key.  This script
re-implements that paragraph from scratch — deliberately sharing no code
with ``repro.service.audit`` — so an auditor handed nothing but the chain
file can check it with a stock Python.

Usage::

    python tools/check_audit.py --verify VAULT_DIR            # auto-detect
    python tools/check_audit.py --verify vault/audit.log      # JSONL chain
    python tools/check_audit.py --verify vault/registry.db    # sqlite chain
    python tools/check_audit.py --verify V --export chain.jsonl --json

Exit codes: 0 = chain intact, 1 = chain broken (the exact failing record
index is reported), 2 = operational error (no chain found, unreadable file).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sqlite3
import sys

GENESIS = "0" * 64
RECORD_KEYS = frozenset({"index", "prev", "ts", "event", "tenant", "dataset", "payload", "digest"})
AUDIT_LOG = "audit.log"
REGISTRY_DB = "registry.db"


class ChainBroken(Exception):
    def __init__(self, index: int, reason: str) -> None:
        super().__init__(reason)
        self.index = index
        self.reason = reason


def canonical(document) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def iter_jsonl(path: str):
    """Parsed records from a JSONL chain file; raises ChainBroken with the line index."""
    with open(path, "rb") as handle:
        for index, raw in enumerate(handle):
            try:
                yield json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                raise ChainBroken(index, f"malformed record: {error}") from error


def iter_sqlite(path: str):
    """Records reconstructed from the ``audit`` table of a registry database."""
    conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    try:
        rows = conn.execute(
            "SELECT idx, prev, ts, event, tenant, dataset, payload, digest "
            "FROM audit ORDER BY idx"
        ).fetchall()
    finally:
        conn.close()
    for position, row in enumerate(rows):
        idx, prev, ts, event, tenant, dataset, payload, digest = row
        try:
            parsed = json.loads(payload)
        except ValueError as error:
            raise ChainBroken(position, f"malformed payload: {error}") from error
        yield {
            "index": idx,
            "prev": prev,
            "ts": ts,
            "event": event,
            "tenant": tenant,
            "dataset": dataset,
            "payload": parsed,
            "digest": digest,
        }


def resolve_chain(path: str):
    """(kind, concrete path) for *path*: a vault dir, a .db file, or JSONL."""
    if os.path.isdir(path):
        db = os.path.join(path, REGISTRY_DB)
        log = os.path.join(path, AUDIT_LOG)
        if os.path.exists(db):
            return "sqlite", db
        if os.path.exists(log):
            return "file", log
        raise FileNotFoundError(f"no audit chain in {path!r} (no {REGISTRY_DB} or {AUDIT_LOG})")
    if not os.path.exists(path):
        raise FileNotFoundError(f"no such chain: {path!r}")
    with open(path, "rb") as handle:
        magic = handle.read(16)
    return ("sqlite", path) if magic.startswith(b"SQLite format 3") else ("file", path)


def verify(records) -> tuple[int, str]:
    """Walk *records*; return (count, head digest) or raise ChainBroken."""
    prev = GENESIS
    count = 0
    for index, doc in enumerate(records):
        if not isinstance(doc, dict):
            raise ChainBroken(index, "record is not a JSON object")
        if set(doc) != RECORD_KEYS:
            missing = sorted(RECORD_KEYS - set(doc))
            extra = sorted(set(doc) - RECORD_KEYS)
            raise ChainBroken(
                index,
                "wrong keys"
                + (f" (missing: {', '.join(missing)})" if missing else "")
                + (f" (unexpected: {', '.join(extra)})" if extra else ""),
            )
        if doc["index"] != index:
            raise ChainBroken(index, f"index discontinuity (found {doc['index']!r})")
        if doc["prev"] != prev:
            raise ChainBroken(index, "prev digest does not match the preceding record")
        body = {key: value for key, value in doc.items() if key != "digest"}
        recomputed = hashlib.sha256(canonical(body).encode("utf-8")).hexdigest()
        if recomputed != doc["digest"]:
            raise ChainBroken(index, "digest mismatch (record was modified)")
        prev = doc["digest"]
        count += 1
    return count, prev


def export_chain(records, destination: str) -> int:
    """Write *records* as canonical JSONL (the CI artifact form); return count."""
    written = 0
    with open(destination, "w", encoding="utf-8") as handle:
        for doc in records:
            handle.write(canonical(doc) + "\n")
            written += 1
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--verify",
        action="store_true",
        help="walk the chain recomputing every digest (the default and only action)",
    )
    parser.add_argument(
        "path",
        help=f"vault directory (auto-detects {REGISTRY_DB}/{AUDIT_LOG}), "
        "a registry database, or a JSONL chain file",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report on stdout")
    parser.add_argument(
        "--export",
        metavar="FILE",
        help="additionally write the chain as canonical JSONL (CI artifact) — "
        "raw records, exported even when verification then fails",
    )
    args = parser.parse_args(argv)

    def emit(payload: dict, line: str) -> None:
        print(json.dumps(payload, indent=2, sort_keys=True) if args.json else line)

    try:
        kind, chain_path = resolve_chain(args.path)
        records = list(iter_jsonl(chain_path) if kind == "file" else iter_sqlite(chain_path))
    except ChainBroken as error:
        emit(
            {"ok": False, "failed_index": error.index, "error": error.reason},
            f"audit chain BROKEN at record {error.index}: {error.reason}",
        )
        return 1
    except (OSError, sqlite3.Error) as error:
        emit({"error": str(error)}, f"error: {error}")
        return 2

    if args.export:
        export_chain(records, args.export)

    try:
        count, head = verify(records)
    except ChainBroken as error:
        emit(
            {"ok": False, "failed_index": error.index, "error": error.reason, "chain": chain_path},
            f"audit chain BROKEN at record {error.index}: {error.reason}",
        )
        return 1
    payload = {"ok": True, "records": count, "chain": chain_path, "backend": kind}
    if count:
        payload["head"] = head
    emit(payload, f"audit chain OK: {count} records ({kind}: {chain_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
